package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical splitmix64 implementation
	// (Vigna, 2015) seeded with 0: first three outputs.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	state := uint64(0)
	for i, w := range want {
		var v uint64
		v, state = SplitMix64(state)
		if v != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, v, w)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d equal outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Derived streams for adjacent ids must not be correlated; check that
	// their first outputs differ and a simple bit-balance test passes.
	seen := make(map[uint64]bool)
	for id := uint64(0); id < 1000; id++ {
		v := Derive(42, id).Uint64()
		if seen[v] {
			t.Fatalf("duplicate first output for derived stream id %d", id)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(9)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(10)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(12)
	const p = 0.3
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency = %v", p, got)
	}
}

func TestCoinBalance(t *testing.T) {
	r := New(13)
	const n = 100000
	ones := 0
	for i := 0; i < n; i++ {
		c := r.Coin()
		if c != 0 && c != 1 {
			t.Fatalf("Coin returned %d", c)
		}
		ones += c
	}
	if math.Abs(float64(ones)/n-0.5) > 0.01 {
		t.Fatalf("Coin balance = %v", float64(ones)/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(15)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

// binomPMF computes the exact Binomial(n,p) PMF at k via log-gamma.
func binomPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return math.Exp(ln - lk - lnk + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// chiSquareBinomial draws samples from Binomial(n,p) and performs a
// chi-square goodness-of-fit test against the exact PMF, pooling tail bins
// with expected count below 5. Returns the chi-square statistic and the
// degrees of freedom.
func chiSquareBinomial(t *testing.T, r *Stream, n int, p float64, draws int) (float64, int) {
	t.Helper()
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d, %v) = %d out of range", n, p, k)
		}
		counts[k]++
	}
	// Pool bins so each expected count >= 5.
	var chi float64
	df := -1 // subtract one for the sum constraint
	expAcc, obsAcc := 0.0, 0.0
	for k := 0; k <= n; k++ {
		expAcc += binomPMF(n, p, k) * float64(draws)
		obsAcc += float64(counts[k])
		if expAcc >= 5 {
			d := obsAcc - expAcc
			chi += d * d / expAcc
			df++
			expAcc, obsAcc = 0, 0
		}
	}
	if expAcc > 0 {
		d := obsAcc - expAcc
		chi += d * d / math.Max(expAcc, 1e-9)
		df++
	}
	return chi, df
}

func TestBinomialInversionDistribution(t *testing.T) {
	r := New(16)
	// np = 4 < threshold: exercises the inversion path.
	chi, df := chiSquareBinomial(t, r, 40, 0.1, 100000)
	// 99.99th percentile of chi-square with df dof is roughly df + 4*sqrt(2df) + 15.
	limit := float64(df) + 4*math.Sqrt(2*float64(df)) + 15
	if chi > limit {
		t.Fatalf("inversion chi-square = %v (df=%d, limit %v)", chi, df, limit)
	}
}

func TestBinomialBTRSDistribution(t *testing.T) {
	r := New(17)
	// np = 50 >= threshold: exercises the BTRS path.
	chi, df := chiSquareBinomial(t, r, 500, 0.1, 100000)
	limit := float64(df) + 4*math.Sqrt(2*float64(df)) + 15
	if chi > limit {
		t.Fatalf("BTRS chi-square = %v (df=%d, limit %v)", chi, df, limit)
	}
}

func TestBinomialBTRSLargeP(t *testing.T) {
	r := New(18)
	// p > 0.5 exercises the reflection path into BTRS.
	chi, df := chiSquareBinomial(t, r, 200, 0.7, 100000)
	limit := float64(df) + 4*math.Sqrt(2*float64(df)) + 15
	if chi > limit {
		t.Fatalf("reflected BTRS chi-square = %v (df=%d, limit %v)", chi, df, limit)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(19)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{100, 0.02}, {100, 0.5}, {10000, 0.01}, {10000, 0.37}, {7, 0.9},
	}
	r := New(20)
	for _, c := range cases {
		const draws = 50000
		var sum, sumsq float64
		for i := 0; i < draws; i++ {
			k := float64(r.Binomial(c.n, c.p))
			sum += k
			sumsq += k * k
		}
		mean := sum / draws
		variance := sumsq/draws - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := float64(c.n) * c.p * (1 - c.p)
		// 6-sigma tolerance on the sample mean.
		tol := 6 * math.Sqrt(wantVar/draws)
		if math.Abs(mean-wantMean) > tol {
			t.Errorf("Binomial(%d,%v): mean %v, want %v +/- %v", c.n, c.p, mean, wantMean, tol)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+1 {
			t.Errorf("Binomial(%d,%v): variance %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialRangeProperty(t *testing.T) {
	r := New(21)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 2000)
		p := float64(pRaw) / 65535
		k := r.Binomial(n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultinomialSumsToN(t *testing.T) {
	r := New(22)
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	out := make([]int, len(probs))
	for i := 0; i < 1000; i++ {
		r.Multinomial(100, probs, out)
		sum := 0
		for _, k := range out {
			if k < 0 {
				t.Fatalf("negative multinomial count: %v", out)
			}
			sum += k
		}
		if sum != 100 {
			t.Fatalf("multinomial counts sum to %d: %v", sum, out)
		}
	}
}

func TestMultinomialMarginals(t *testing.T) {
	r := New(23)
	probs := []float64{0.5, 0.25, 0.125, 0.125}
	out := make([]int, len(probs))
	sums := make([]float64, len(probs))
	const draws = 20000
	const n = 64
	for i := 0; i < draws; i++ {
		r.Multinomial(n, probs, out)
		for j, k := range out {
			sums[j] += float64(k)
		}
	}
	for j, p := range probs {
		mean := sums[j] / draws
		want := float64(n) * p
		tol := 6 * math.Sqrt(float64(n)*p*(1-p)/draws)
		if math.Abs(mean-want) > tol {
			t.Errorf("marginal %d: mean %v, want %v +/- %v", j, mean, want, tol)
		}
	}
}

func TestMultinomialUnnormalizedWeights(t *testing.T) {
	r := New(24)
	probs := []float64{2, 6} // i.e. 0.25, 0.75
	out := make([]int, 2)
	var first float64
	const draws = 20000
	for i := 0; i < draws; i++ {
		r.Multinomial(20, probs, out)
		first += float64(out[0])
	}
	mean := first / draws
	if math.Abs(mean-5) > 0.2 {
		t.Fatalf("unnormalized multinomial marginal = %v, want ~5", mean)
	}
}

func TestMultinomialZeroWeightEntry(t *testing.T) {
	r := New(25)
	probs := []float64{0, 1, 0}
	out := make([]int, 3)
	r.Multinomial(50, probs, out)
	if out[0] != 0 || out[1] != 50 || out[2] != 0 {
		t.Fatalf("multinomial with point mass: %v", out)
	}
}

func TestMultinomialPanics(t *testing.T) {
	r := New(26)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("length mismatch", func() {
		r.Multinomial(10, []float64{1, 1}, make([]int, 3))
	})
	mustPanic("negative prob", func() {
		r.Multinomial(10, []float64{1, -1}, make([]int, 2))
	})
	mustPanic("zero total", func() {
		r.Multinomial(10, []float64{0, 0}, make([]int, 2))
	})
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("NewAlias(nil) did not error")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("NewAlias(all-zero) did not error")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("NewAlias(negative) did not error")
	}
	if _, err := NewAlias([]float64{1, math.NaN()}); err == nil {
		t.Error("NewAlias(NaN) did not error")
	}
	if _, err := NewAlias([]float64{1, math.Inf(1)}); err == nil {
		t.Error("NewAlias(Inf) did not error")
	}
}

func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	r := New(27)
	const draws = 200000
	counts := make([]int, 4)
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		sd := math.Sqrt(want * (1 - w/10))
		if math.Abs(float64(counts[i])-want) > 6*sd {
			t.Errorf("outcome %d: %d draws, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{3.7})
	if err != nil {
		t.Fatal(err)
	}
	r := New(28)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias sampled nonzero index")
		}
	}
}

func TestAliasPointMass(t *testing.T) {
	a, err := NewAlias([]float64{0, 0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	r := New(29)
	for i := 0; i < 1000; i++ {
		if got := a.Sample(r); got != 2 {
			t.Fatalf("point-mass alias sampled %d", got)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBinomialInversion(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(100, 0.05)
	}
}

func BenchmarkBinomialBTRS(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(100000, 0.3)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	a, _ := NewAlias([]float64{1, 2, 3, 4})
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(r)
	}
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	a := New(123)
	b := New(123)
	b.Jump()
	// The jumped stream must differ from the original over a long prefix.
	for i := 0; i < 10000; i++ {
		if a.Uint64() == b.Uint64() {
			// A single collision is possible but astronomically unlikely
			// repeatedly; require full divergence over the window.
			same := 1
			for j := 0; j < 10; j++ {
				if a.Uint64() == b.Uint64() {
					same++
				}
			}
			if same > 1 {
				t.Fatalf("jumped stream tracks the original near step %d", i)
			}
		}
	}
}

func TestJumpDeterministic(t *testing.T) {
	a := New(9)
	b := New(9)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump is not deterministic")
		}
	}
	a.LongJump()
	b.LongJump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("LongJump is not deterministic")
		}
	}
}

func TestJumpKnownRelation(t *testing.T) {
	// Jump then LongJump must differ from LongJump then Jump only in
	// ordering of the same commutative composition: both land at
	// 2^128 + 2^192 steps, so the sequences must coincide.
	a := New(31)
	a.Jump()
	a.LongJump()
	b := New(31)
	b.LongJump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("jumps do not commute; polynomial application is broken")
		}
	}
}

// TestMultinomialMatchesBinomialMarginal: the first component of a
// 2-outcome multinomial must be distributed Binomial(n, p) — chi-square
// against the exact PMF.
func TestMultinomialMatchesBinomialMarginal(t *testing.T) {
	r := New(71)
	const n = 60
	const p = 0.3
	const draws = 60000
	probs := []float64{p, 1 - p}
	out := make([]int, 2)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		r.Multinomial(n, probs, out)
		counts[out[0]]++
	}
	var chi float64
	df := -1
	expAcc, obsAcc := 0.0, 0.0
	for k := 0; k <= n; k++ {
		expAcc += binomPMF(n, p, k) * draws
		obsAcc += float64(counts[k])
		if expAcc >= 5 {
			d := obsAcc - expAcc
			chi += d * d / expAcc
			df++
			expAcc, obsAcc = 0, 0
		}
	}
	if expAcc > 0 {
		d := obsAcc - expAcc
		chi += d * d / expAcc
		df++
	}
	limit := float64(df) + 4*math.Sqrt(2*float64(df)) + 15
	if chi > limit {
		t.Fatalf("multinomial marginal chi-square = %v (df=%d, limit %v)", chi, df, limit)
	}
}
