package rng

import (
	"math"
	"testing"
)

// TestMultinomialDistMatchesStream pins the bit-identity contract: for the
// same (n, probs) and the same stream state, MultinomialDist.Sample must
// produce exactly the draws — and consume exactly the randomness — of
// Stream.Multinomial. The cases sweep the regimes that matter: small and
// large n (inversion vs BTRS first components), zero-probability entries,
// unnormalized weights, near-total mass in a prefix (numerical exhaustion),
// and k = 1.
func TestMultinomialDistMatchesStream(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		probs []float64
	}{
		{"uniform4 small", 8, []float64{1, 1, 1, 1}},
		{"uniform4 large", 5000, []float64{0.25, 0.25, 0.25, 0.25}},
		{"skewed", 64, []float64{0.9, 0.05, 0.04, 0.01}},
		{"zero entries", 32, []float64{0, 2, 0, 1}},
		{"unnormalized", 100, []float64{3, 1, 5, 2, 9}},
		{"mass in prefix", 40, []float64{1, 1e-300, 1e-300, 1e-300}},
		{"single component", 17, []float64{4}},
		{"two components", 1000, []float64{0.7, 0.3}},
		{"n zero", 0, []float64{1, 2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d MultinomialDist
			d.Init(tc.n, tc.probs)
			if d.N() != tc.n || d.K() != len(tc.probs) {
				t.Fatalf("N/K = %d/%d, want %d/%d", d.N(), d.K(), tc.n, len(tc.probs))
			}
			a := New(12345)
			b := New(12345)
			wantOut := make([]int, len(tc.probs))
			gotOut := make([]int, len(tc.probs))
			for draw := 0; draw < 200; draw++ {
				a.Multinomial(tc.n, tc.probs, wantOut)
				d.Sample(b, gotOut)
				for j := range wantOut {
					if gotOut[j] != wantOut[j] {
						t.Fatalf("draw %d component %d: got %d, want %d (got %v want %v)",
							draw, j, gotOut[j], wantOut[j], gotOut, wantOut)
					}
				}
				if a.Uint64() != b.Uint64() {
					t.Fatalf("draw %d: stream states diverged — the cached sampler consumed different randomness", draw)
				}
			}
		})
	}
}

// TestMultinomialDistReInit checks that re-initializing with the same
// component count reuses the buffer and that a cached sampler tracks a
// changing law correctly (the per-round usage pattern of the vec engine).
func TestMultinomialDistReInit(t *testing.T) {
	var d MultinomialDist
	laws := [][]float64{
		{0.4, 0.3, 0.2, 0.1},
		{0.1, 0.1, 0.1, 0.7},
		{1, 0, 0, 1},
	}
	a := New(99)
	b := New(99)
	out := make([]int, 4)
	want := make([]int, 4)
	for round := 0; round < 50; round++ {
		probs := laws[round%len(laws)]
		d.Init(20, probs)
		a.Multinomial(20, probs, want)
		d.Sample(b, out)
		for j := range want {
			if out[j] != want[j] {
				t.Fatalf("round %d: got %v, want %v", round, out, want)
			}
		}
	}
}

// TestMultinomialDistSumsToN: every draw partitions exactly n trials.
func TestMultinomialDistSumsToN(t *testing.T) {
	var d MultinomialDist
	d.Init(137, []float64{0.5, 0.2, 0.2, 0.1})
	r := New(7)
	out := make([]int, 4)
	for i := 0; i < 500; i++ {
		d.Sample(r, out)
		sum := 0
		for _, c := range out {
			if c < 0 {
				t.Fatalf("negative count in %v", out)
			}
			sum += c
		}
		if sum != 137 {
			t.Fatalf("draw sums to %d, want 137 (%v)", sum, out)
		}
	}
}

// TestMultinomialDistMarginals: component marginals are Binomial(n, pᵢ);
// check the empirical means against a 5σ band.
func TestMultinomialDistMarginals(t *testing.T) {
	const n, trials = 60, 4000
	probs := []float64{0.5, 0.25, 0.15, 0.1}
	var d MultinomialDist
	d.Init(n, probs)
	r := New(31337)
	out := make([]int, len(probs))
	sums := make([]float64, len(probs))
	for i := 0; i < trials; i++ {
		d.Sample(r, out)
		for j, c := range out {
			sums[j] += float64(c)
		}
	}
	for j, p := range probs {
		mean := sums[j] / trials
		want := float64(n) * p
		se := math.Sqrt(float64(n)*p*(1-p)) / math.Sqrt(trials)
		if math.Abs(mean-want) > 5*se {
			t.Errorf("component %d mean %.3f, want %.3f ± %.3f", j, mean, want, 5*se)
		}
	}
}

// TestMultinomialDistPanics: invalid laws panic with the Stream.Multinomial
// contract.
func TestMultinomialDistPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	var d MultinomialDist
	mustPanic("negative prob", func() { d.Init(10, []float64{1, -1}) })
	mustPanic("NaN prob", func() { d.Init(10, []float64{1, math.NaN()}) })
	mustPanic("zero total", func() { d.Init(10, []float64{0, 0}) })
	mustPanic("out length", func() {
		d.Init(10, []float64{1, 1})
		d.Sample(New(1), make([]int, 3))
	})
}

// TestMultinomialDistPrecomputeCond pins the bit-identity contract of the
// conditional-sampler cache: Sample after PrecomputeCond must produce
// exactly the draws, and consume exactly the randomness, of the uncached
// path — the cached samplers are built with the same arguments the uncached
// path hands to Stream.Binomial.
func TestMultinomialDistPrecomputeCond(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		probs []float64
	}{
		{"uniform4", 8, []float64{1, 1, 1, 1}},
		{"skewed5", 64, []float64{0.9, 0.05, 0.02, 0.02, 0.01}},
		{"zero entries", 32, []float64{0, 2, 0, 1}},
		{"mass in prefix", 40, []float64{1, 1e-300, 1e-300, 1e-300}},
		{"two components", 100, []float64{0.7, 0.3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var plain, cached MultinomialDist
			plain.Init(tc.n, tc.probs)
			cached.Init(tc.n, tc.probs)
			cached.PrecomputeCond()
			a := New(4242)
			b := New(4242)
			want := make([]int, len(tc.probs))
			got := make([]int, len(tc.probs))
			for draw := 0; draw < 200; draw++ {
				plain.Sample(a, want)
				cached.Sample(b, got)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("draw %d: got %v, want %v", draw, got, want)
					}
				}
				if a.Uint64() != b.Uint64() {
					t.Fatalf("draw %d: stream states diverged", draw)
				}
			}
		})
	}
}

// TestMultinomialDistJointLaw checks that the joint alias table realizes the
// same distribution as the conditional decomposition: exact outcome
// frequencies against the multinomial pmf with a chi-square-style 5σ bound
// per cell on a small support, plus sum and refusal behavior.
func TestMultinomialDistJointLaw(t *testing.T) {
	const n, trials = 4, 200000
	probs := []float64{0.5, 0.3, 0.2}
	var d MultinomialDist
	d.Init(n, probs)
	if !d.PrecomputeJoint(4096) {
		t.Fatal("PrecomputeJoint refused a 15-outcome support")
	}
	r := New(2026)
	out := make([]int, 3)
	freq := map[[3]int]int{}
	for i := 0; i < trials; i++ {
		d.SampleJoint(r, out)
		sum := 0
		for _, c := range out {
			sum += c
		}
		if sum != n {
			t.Fatalf("joint draw sums to %d: %v", sum, out)
		}
		freq[[3]int{out[0], out[1], out[2]}]++
	}
	fact := []float64{1, 1, 2, 6, 24}
	for c0 := 0; c0 <= n; c0++ {
		for c1 := 0; c0+c1 <= n; c1++ {
			c2 := n - c0 - c1
			p := fact[n] / (fact[c0] * fact[c1] * fact[c2]) *
				math.Pow(probs[0], float64(c0)) * math.Pow(probs[1], float64(c1)) * math.Pow(probs[2], float64(c2))
			want := p * trials
			se := math.Sqrt(p * (1 - p) * trials)
			got := float64(freq[[3]int{c0, c1, c2}])
			if math.Abs(got-want) > 5*se+1 {
				t.Errorf("outcome (%d,%d,%d): %d draws, want %.1f ± %.1f", c0, c1, c2, freq[[3]int{c0, c1, c2}], want, 5*se)
			}
		}
	}
}

// TestMultinomialDistJointFallback: SampleJoint without a built table (or
// after a refusal) must fall back to the bit-identical conditional path.
func TestMultinomialDistJointFallback(t *testing.T) {
	probs := []float64{1, 1, 1, 1}
	var plain, joint MultinomialDist
	plain.Init(2000, probs)
	joint.Init(2000, probs)
	if joint.PrecomputeJoint(64) {
		t.Fatal("PrecomputeJoint accepted a support beyond its cap")
	}
	a := New(5)
	b := New(5)
	want := make([]int, 4)
	got := make([]int, 4)
	for draw := 0; draw < 50; draw++ {
		plain.Sample(a, want)
		joint.SampleJoint(b, got)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("draw %d: got %v, want %v", draw, got, want)
			}
		}
	}
	// Re-Init invalidates a previously built table.
	joint.Init(4, probs)
	if !joint.PrecomputeJoint(4096) {
		t.Fatal("PrecomputeJoint refused a tiny support")
	}
	joint.Init(4, probs)
	c := New(9)
	d2 := New(9)
	plain.Init(4, probs)
	for draw := 0; draw < 50; draw++ {
		plain.Sample(c, want)
		joint.SampleJoint(d2, got)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("post-reinit draw %d: got %v, want %v", draw, got, want)
			}
		}
	}
}
