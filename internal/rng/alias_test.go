package rng

import "testing"

// TestAliasInitReuse verifies that rebuilding an Alias in place via Init
// produces exactly the tables a fresh NewAlias would, including when the
// reused table previously held a different size or distribution.
func TestAliasInitReuse(t *testing.T) {
	cases := [][]float64{
		{1, 2, 3, 4},
		{5},
		{0, 0, 5, 0},
		{0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25},
		{1e-9, 1, 1e9},
	}
	var reused Alias
	for _, w := range cases {
		fresh, err := NewAlias(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.Init(w); err != nil {
			t.Fatal(err)
		}
		if reused.Len() != fresh.Len() {
			t.Fatalf("weights %v: Len %d vs %d", w, reused.Len(), fresh.Len())
		}
		// Identical tables imply identical sampling for any RNG state.
		for i := 0; i < fresh.Len(); i++ {
			if reused.prob[i] != fresh.prob[i] || reused.alias[i] != fresh.alias[i] {
				t.Fatalf("weights %v: table row %d differs: (%v,%d) vs (%v,%d)",
					w, i, reused.prob[i], reused.alias[i], fresh.prob[i], fresh.alias[i])
			}
		}
	}
}

// TestAliasInitRejectsBadWeights mirrors the NewAlias error cases and checks
// a failed Init leaves the table unusable rather than half-updated.
func TestAliasInitRejectsBadWeights(t *testing.T) {
	var a Alias
	if err := a.Init(nil); err == nil {
		t.Error("Init(nil) did not error")
	}
	if err := a.Init([]float64{0, 0}); err == nil {
		t.Error("Init(all-zero) did not error")
	}
	if err := a.Init([]float64{1, -1}); err == nil {
		t.Error("Init(negative) did not error")
	}
}

// BenchmarkAliasInitReuse measures the steady-state rebuild cost (the hot
// path of the per-round mixture table).
func BenchmarkAliasInitReuse(b *testing.B) {
	w := make([]float64, 64)
	for i := range w {
		w[i] = float64(i + 1)
	}
	var a Alias
	if err := a.Init(w); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w[i%64] = float64(i%97 + 1)
		if err := a.Init(w); err != nil {
			b.Fatal(err)
		}
	}
}
