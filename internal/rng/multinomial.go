package rng

import "math"

// MultinomialDist is a Multinomial(n, probs) sampler with the
// per-distribution setup hoisted out of the sampling loop, the multinomial
// counterpart of BinomialDist. Stream.Multinomial re-derives the
// conditional-binomial decomposition — the running residual mass, every
// conditional probability, and the first component's full binomial setup —
// on each call; the vectorized k-ary engine draws from the same (n, probs)
// once per agent per round, so Init once and Sample n times amortizes that
// work across the whole population. The first conditional binomial (always
// Binomial(n, probs[0]/total), the most expensive setup) is fully cached;
// the later components depend on the running remainder and pay only a
// cached conditional probability each.
//
// Sample consumes the stream exactly like Stream.Multinomial for the same
// (n, probs): the conditional probabilities are precomputed with the same
// float operation sequence, and the per-component draws go through the same
// binomial sampler, so the two are bit-identical by construction (the
// equivalence test pins this). Sample does not mutate the distribution, so
// one initialized MultinomialDist may be shared by concurrent workers, each
// sampling with its own stream.
type MultinomialDist struct {
	n int
	k int
	// pcond[i] is the conditional probability of component i given the
	// remaining trials, probs[i]/restᵢ clamped to 1, for i < k-1. Entries at
	// and beyond the exhaustion point are never read.
	pcond []float64
	// first is the fully cached sampler for component 0; components i ≥ 1
	// sample Binomial(remaining, pcond[i]) with remaining data-dependent.
	first BinomialDist
	// exhaust is the first component index at which the residual mass
	// numerically ran out (rest ≤ 0 after subtracting probs[i]); k when it
	// never does. Sample zero-fills past it, mirroring Stream.Multinomial.
	exhaust int
	// probs holds the normalized component probabilities; PrecomputeJoint
	// needs them to evaluate the joint pmf.
	probs []float64
	// cond, filled by PrecomputeCond, caches Binomial(m, pcond[i]) at
	// cond[(i-1)*(n+1)+m] for the inner components i ∈ [1, k-2], so Sample
	// skips the per-draw binomial setup (one math.Pow each) entirely.
	cond   []BinomialDist
	condOK bool
	// joint, built by PrecomputeJoint, samples the entire count vector with
	// one alias draw; jointVecs stores the enumerated support flat, k bytes
	// per outcome.
	joint     Alias
	jointVecs []uint8
	jointW    []float64
	jointOK   bool
}

// Init prepares the sampler for Multinomial(n, probs). The probabilities
// need not be normalized; they must be non-negative with a positive sum
// (same panics as Stream.Multinomial). Re-Init with the same component
// count is allocation-free.
func (d *MultinomialDist) Init(n int, probs []float64) {
	var total float64
	for _, p := range probs {
		if p < 0 || math.IsNaN(p) {
			panic("rng: Multinomial with negative or NaN probability")
		}
		total += p
	}
	if total <= 0 {
		panic("rng: Multinomial with zero total probability")
	}
	d.n = n
	d.k = len(probs)
	if cap(d.pcond) < d.k {
		d.pcond = make([]float64, d.k)
	}
	d.pcond = d.pcond[:d.k]
	if cap(d.probs) < d.k {
		d.probs = make([]float64, d.k)
	}
	d.probs = d.probs[:d.k]
	for i, p := range probs {
		d.probs[i] = p / total
	}
	d.exhaust = d.k
	d.condOK = false
	d.jointOK = false
	// Replicate Stream.Multinomial's residual-mass recurrence exactly: the
	// same division and subtraction order keeps every pcond[i] bitwise equal
	// to the value the one-shot path would compute.
	rest := total
	for i := 0; i < d.k-1; i++ {
		pi := probs[i] / rest
		if pi > 1 {
			pi = 1
		}
		d.pcond[i] = pi
		rest -= probs[i]
		if rest <= 0 {
			d.exhaust = i
			break
		}
	}
	if d.k > 1 {
		d.first.Init(n, d.pcond[0])
	}
}

// N returns the trial count the sampler was initialized with.
func (d *MultinomialDist) N() int { return d.n }

// K returns the component count the sampler was initialized with.
func (d *MultinomialDist) K() int { return d.k }

// Sample draws one count vector into out (which must have K entries) using
// r's randomness. It is safe for concurrent use with distinct streams.
func (d *MultinomialDist) Sample(r *Stream, out []int) {
	if len(out) != d.k {
		panic("rng: Multinomial output length mismatch")
	}
	remaining := d.n
	for i := 0; i < d.k; i++ {
		if remaining == 0 {
			out[i] = 0
			continue
		}
		if i == d.k-1 {
			out[i] = remaining
			break
		}
		var c int
		if i == 0 {
			c = d.first.Sample(r)
		} else if d.condOK {
			c = d.cond[(i-1)*(d.n+1)+remaining].Sample(r)
		} else {
			c = r.Binomial(remaining, d.pcond[i])
		}
		out[i] = c
		remaining -= c
		if i == d.exhaust {
			// Numerical exhaustion: all residual mass was in probs[i].
			for j := i + 1; j < d.k; j++ {
				out[j] = 0
			}
			if remaining > 0 {
				out[i] += remaining
			}
			return
		}
	}
}

// maxCondCache bounds the trial count PrecomputeCond will build a table for:
// the table has (k-2)(n+1) samplers, and past this size the per-Init build
// cost stops amortizing over typical populations.
const maxCondCache = 1024

// PrecomputeCond caches every conditional sampler Sample can need — one
// Binomial(m, pcond[i]) per inner component i and remaining count m — so the
// per-draw binomial setup (a math.Pow each) is paid (k-2)(n+1) times per
// Init instead of k-2 times per Sample. Draws are bit-identical to the
// uncached path: the cached samplers are built with exactly the arguments
// Sample would pass to Stream.Binomial. Call it between Init and handing
// the distribution to concurrent samplers; Sample never mutates the cache.
// A no-op for k ≤ 2 or n > maxCondCache.
func (d *MultinomialDist) PrecomputeCond() {
	if d.k <= 2 || d.n > maxCondCache {
		return
	}
	stride := d.n + 1
	need := (d.k - 2) * stride
	if cap(d.cond) < need {
		d.cond = make([]BinomialDist, need)
	}
	d.cond = d.cond[:need]
	last := d.k - 2
	if d.exhaust < last {
		last = d.exhaust
	}
	for i := 1; i <= last; i++ {
		for m := 0; m <= d.n; m++ {
			d.cond[(i-1)*stride+m].Init(m, d.pcond[i])
		}
	}
	d.condOK = true
}

// PrecomputeJoint enumerates the full support of the count-vector
// distribution — the C(n+k-1, k-1) compositions of n into k parts — and
// builds a Walker/Vose alias table over their pmf, so SampleJoint draws the
// whole vector with one Intn and one Float64. It reports whether the table
// was built; it refuses (and SampleJoint falls back to Sample) when the
// support exceeds maxSupport, n does not fit the byte-packed support store,
// or underflow zeroed the entire pmf. The joint table realizes the same
// distribution as Sample but consumes the stream differently, so switching
// it on changes trajectories (not laws).
func (d *MultinomialDist) PrecomputeJoint(maxSupport int) bool {
	d.jointOK = false
	if d.k < 2 || d.n > 255 {
		return false
	}
	support := 1
	// C(n+k-1, k-1) with overflow/size guard.
	for i := 1; i < d.k; i++ {
		support = support * (d.n + i) / i
		if support > maxSupport {
			return false
		}
	}
	if cap(d.jointVecs) < support*d.k {
		d.jointVecs = make([]uint8, support*d.k)
	}
	d.jointVecs = d.jointVecs[:0]
	if cap(d.jointW) < support {
		d.jointW = make([]float64, 0, support)
	}
	d.jointW = d.jointW[:0]
	// invFact[c] = 1/c!; the pmf n!·∏ pᵢ^cᵢ/cᵢ! only needs relative weights,
	// so the common n! factor is dropped.
	invFact := make([]float64, d.n+1)
	invFact[0] = 1
	for c := 1; c <= d.n; c++ {
		invFact[c] = invFact[c-1] / float64(c)
	}
	cur := make([]uint8, d.k)
	var walk func(comp int, left int, weight float64)
	walk = func(comp int, left int, weight float64) {
		if comp == d.k-1 {
			cur[comp] = uint8(left)
			d.jointVecs = append(d.jointVecs, cur...)
			d.jointW = append(d.jointW, weight*pow(d.probs[comp], left)*invFact[left])
			return
		}
		w := weight
		for c := 0; c <= left; c++ {
			cur[comp] = uint8(c)
			walk(comp+1, left-c, w*invFact[c])
			w *= d.probs[comp]
		}
	}
	walk(0, d.n, 1)
	if err := d.joint.Init(d.jointW); err != nil {
		return false
	}
	d.jointOK = true
	return true
}

// pow is xⁿ by repeated multiplication: n is a small trial count, and the
// slight accuracy edge of math.Pow is irrelevant for pmf weights.
func pow(x float64, n int) float64 {
	p := 1.0
	for ; n > 0; n-- {
		p *= x
	}
	return p
}

// SampleJoint draws one count vector like Sample, through the joint alias
// table when PrecomputeJoint built one (falling back to Sample otherwise).
// Same concurrency contract as Sample: read-only, share freely across
// streams.
func (d *MultinomialDist) SampleJoint(r *Stream, out []int) {
	if !d.jointOK {
		d.Sample(r, out)
		return
	}
	if len(out) != d.k {
		panic("rng: Multinomial output length mismatch")
	}
	base := d.joint.Sample(r) * d.k
	for j := 0; j < d.k; j++ {
		out[j] = int(d.jointVecs[base+j])
	}
}
