// Package rng provides the deterministic random-number substrate used by the
// noisy PULL simulator and the experiment harness.
//
// Everything in the simulation must be reproducible from a single 64-bit
// seed, independent of scheduling: each agent owns a Stream derived from
// (seed, agent id), so stepping agents on a worker pool yields bit-identical
// traces regardless of GOMAXPROCS.
//
// The package implements
//
//   - splitmix64, used only to expand seeds,
//   - xoshiro256++ streams (Stream),
//   - exact Bernoulli, binomial (inversion + BTRS transformed rejection),
//     multinomial and categorical (alias method) samplers, and
//   - permutation helpers.
//
// The binomial and multinomial samplers are what make the aggregate
// observation backend of package sim exact: an agent's h uniform-with-
// replacement samples, pushed through the noise channel, are distributed as
// a pair of nested multinomials (see sim and noise).
package rng

import (
	"errors"
	"math"
)

// SplitMix64 returns the next value of the splitmix64 sequence for the given
// state, and the advanced state. It is used to expand user seeds into
// xoshiro256++ state and to derive independent sub-streams.
func SplitMix64(state uint64) (value, next uint64) {
	next = state + 0x9e3779b97f4a7c15
	z := next
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31), next
}

// Stream is a xoshiro256++ pseudo-random generator. The zero value is not
// usable; construct streams with New or Derive. Stream is not safe for
// concurrent use: give each goroutine (each simulated agent) its own stream.
type Stream struct {
	s [4]uint64
}

// New returns a Stream seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Stream {
	var st Stream
	st.Reseed(seed)
	return &st
}

// Derive returns a Stream for sub-stream id of seed. Streams derived from
// the same seed with distinct ids are statistically independent: the seed
// material is passed through two rounds of splitmix64 mixing so that
// adjacent ids do not produce correlated states.
func Derive(seed, id uint64) *Stream {
	return New(DeriveSeed(seed, id))
}

// DeriveSeed returns the mixed seed that Derive(seed, id) expands into
// stream state. It lets callers reinitialize an existing Stream in place
// (stream.Reseed(DeriveSeed(seed, id))) without allocating, which is what
// makes simulation runners reusable across trials.
func DeriveSeed(seed, id uint64) uint64 {
	v1, _ := SplitMix64(seed ^ 0x8f1bbcdcbfa53e0b)
	v2, _ := SplitMix64(id ^ 0x2545f4914f6cdd1d)
	return v1 ^ (v2 * 0xd6e8feb86659fd93)
}

// Reseed resets the stream state from seed.
func (r *Stream) Reseed(seed uint64) {
	state := seed
	for i := range r.s {
		r.s[i], state = SplitMix64(state)
	}
	// xoshiro256++ requires a state that is not all zero; splitmix64 output
	// is all-zero only with negligible probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// State returns the stream's internal xoshiro256++ state. Together with
// SetState it lets checkpoint/resume code capture a stream mid-sequence and
// continue it bit-identically later (sim.Runner.Snapshot/Restore).
func (r *Stream) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State. The all-zero
// state is invalid for xoshiro256++ and is rejected.
func (r *Stream) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("rng: SetState with all-zero state")
	}
	r.s = s
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift method with rejection, so the result is
// exactly uniform.
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	x := r.Uint64()
	hi, lo := mul64(x, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped.
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Coin returns 0 or 1 with equal probability. It is the tie-breaking coin
// the paper's protocols use.
func (r *Stream) Coin() int {
	return int(r.Uint64() >> 63)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// btrsThreshold is the mean above which the binomial sampler switches from
// sequential inversion to BTRS rejection. Inversion costs O(np); BTRS is
// O(1) but only valid for np >= 10.
const btrsThreshold = 30

// Binomial returns an exact sample from Binomial(n, p).
// It panics if n < 0; p is clamped to [0, 1]. One-shot draws pay the full
// per-distribution setup; callers sampling the same (n, p) repeatedly
// should Init a BinomialDist once and Sample from it instead — the two
// consume the stream identically.
func (r *Stream) Binomial(n int, p float64) int {
	var d BinomialDist
	d.Init(n, p)
	return d.Sample(r)
}

// Multinomial draws counts from Multinomial(n, probs), writing the result
// into out (which must have len(probs) entries). The probabilities need not
// be normalized; they must be non-negative with a positive sum. It uses the
// standard conditional-binomial decomposition, so each draw costs
// O(len(probs)) binomial samples.
func (r *Stream) Multinomial(n int, probs []float64, out []int) {
	if len(out) != len(probs) {
		panic("rng: Multinomial output length mismatch")
	}
	var total float64
	for _, p := range probs {
		if p < 0 || math.IsNaN(p) {
			panic("rng: Multinomial with negative or NaN probability")
		}
		total += p
	}
	if total <= 0 {
		panic("rng: Multinomial with zero total probability")
	}
	remaining := n
	rest := total
	for i := range probs {
		if remaining == 0 {
			out[i] = 0
			continue
		}
		if i == len(probs)-1 {
			out[i] = remaining
			break
		}
		pi := probs[i] / rest
		if pi > 1 {
			pi = 1
		}
		k := r.Binomial(remaining, pi)
		out[i] = k
		remaining -= k
		rest -= probs[i]
		if rest <= 0 {
			// Numerical exhaustion: all residual mass was in probs[i].
			for j := i + 1; j < len(probs); j++ {
				out[j] = 0
			}
			if remaining > 0 {
				out[i] += remaining
			}
			return
		}
	}
}

// jumpPoly is the xoshiro256++ jump polynomial: Jump advances the stream
// by 2^128 steps, partitioning the period into non-overlapping blocks.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// longJumpPoly advances by 2^192 steps.
var longJumpPoly = [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}

// Jump advances the stream by 2^128 positions — equivalent to 2^128 calls
// to Uint64. Jumping k times from a common seed yields k non-overlapping
// sub-sequences, an alternative to Derive when provable disjointness is
// wanted.
func (r *Stream) Jump() { r.applyJump(jumpPoly) }

// LongJump advances the stream by 2^192 positions, for partitioning among
// coarse-grained computations each of which uses Jump internally.
func (r *Stream) LongJump() { r.applyJump(longJumpPoly) }

func (r *Stream) applyJump(poly [4]uint64) {
	var s0, s1, s2, s3 uint64
	for _, p := range poly {
		for b := 0; b < 64; b++ {
			if p&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}
