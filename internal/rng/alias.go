package rng

import (
	"fmt"
	"math"
)

// Alias samples from a fixed discrete distribution in O(1) per draw using
// the Walker/Vose alias method. It is used for per-sample application of
// noise-matrix rows in the exact observation backend, where the same row
// distribution is sampled millions of times.
//
// A zero Alias is valid scratch: Init builds (or rebuilds) the table in
// place, reusing the internal buffers, so hot loops can refresh a table
// every round without allocating.
type Alias struct {
	prob  []float64
	alias []int
	// Construction scratch, retained across Init calls.
	scaled []float64
	work   []int
}

// NewAlias builds an alias table for the given weights. Weights must be
// non-negative, finite, and have a positive sum; they need not be
// normalized.
func NewAlias(weights []float64) (*Alias, error) {
	a := new(Alias)
	if err := a.Init(weights); err != nil {
		return nil, err
	}
	return a, nil
}

// Init (re)builds the table for the given weights, reusing the receiver's
// storage. After the first call with a given outcome count, subsequent
// calls with the same count perform no allocations.
func (a *Alias) Init(weights []float64) error {
	n := len(weights)
	if n == 0 {
		return fmt.Errorf("rng: alias table needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("rng: alias weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("rng: alias weights sum to zero")
	}

	a.prob = grow(a.prob, n)
	a.scaled = grow(a.scaled, n)
	a.alias = growInts(a.alias, n)
	a.work = growInts(a.work, 2*n)

	// Scaled probabilities: mean 1. The small and large worklists share one
	// buffer: small grows from the front, large from the back.
	scaled := a.scaled
	work := a.work
	nSmall, nLarge := 0, 0
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			work[nSmall] = i
			nSmall++
		} else {
			nLarge++
			work[2*n-nLarge] = i
		}
	}
	for nSmall > 0 && nLarge > 0 {
		nSmall--
		l := work[nSmall]
		g := work[2*n-nLarge]
		nLarge--
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			work[nSmall] = g
			nSmall++
		} else {
			nLarge++
			work[2*n-nLarge] = g
		}
	}
	// Remaining entries have scaled probability 1 up to rounding.
	for ; nLarge > 0; nLarge-- {
		g := work[2*n-nLarge]
		a.prob[g] = 1
		a.alias[g] = g
	}
	for ; nSmall > 0; nSmall-- {
		l := work[nSmall-1]
		a.prob[l] = 1
		a.alias[l] = l
	}
	return nil
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Sample draws one outcome index using stream r.
func (a *Alias) Sample(r *Stream) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
