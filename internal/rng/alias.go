package rng

import (
	"fmt"
	"math"
)

// Alias samples from a fixed discrete distribution in O(1) per draw using
// the Walker/Vose alias method. It is used for per-sample application of
// noise-matrix rows in the exact observation backend, where the same row
// distribution is sampled millions of times.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given weights. Weights must be
// non-negative, finite, and have a positive sum; they need not be
// normalized.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: alias weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: alias weights sum to zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Remaining entries have scaled probability 1 up to rounding.
	for _, g := range large {
		a.prob[g] = 1
		a.alias[g] = g
	}
	for _, l := range small {
		a.prob[l] = 1
		a.alias[l] = l
	}
	return a, nil
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Sample draws one outcome index using stream r.
func (a *Alias) Sample(r *Stream) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
