package rng

import (
	"math"
	"sync"
	"testing"
)

// TestBinomialDistMatchesStream pins the contract the vectorized engine
// depends on: for any (n, p), BinomialDist.Sample must return the same
// values AND consume the same number of stream draws as Stream.Binomial.
func TestBinomialDistMatchesStream(t *testing.T) {
	ns := []int{0, 1, 2, 7, 29, 64, 300, 5000}
	ps := []float64{-0.5, 0, 1e-9, 0.01, 0.2, 0.4999, 0.5, 0.5001, 0.8, 0.999, 1, 1.5}
	for _, n := range ns {
		for _, p := range ps {
			a := New(DeriveSeed(42, uint64(n)))
			b := New(DeriveSeed(42, uint64(n)))
			var d BinomialDist
			d.Init(n, p)
			for i := 0; i < 200; i++ {
				want := a.Binomial(n, p)
				got := d.Sample(b)
				if got != want {
					t.Fatalf("n=%d p=%v draw %d: dist %d, stream %d", n, p, i, got, want)
				}
			}
			// Same draw count: the streams must still be in lockstep.
			if a.Uint64() != b.Uint64() {
				t.Fatalf("n=%d p=%v: streams desynchronized after 200 draws", n, p)
			}
		}
	}
}

// TestBinomialDistReuse checks Init is idempotent and re-Init on new
// parameters fully resets the sampler (no state leaks across Init calls,
// including the degenerate and flipped kinds).
func TestBinomialDistReuse(t *testing.T) {
	var d BinomialDist
	r := New(7)
	params := []struct {
		n int
		p float64
	}{{100, 0.9}, {0, 0.5}, {50, 0.3}, {10, 0}, {2000, 0.45}, {5, 1}}
	for _, pr := range params {
		d.Init(pr.n, pr.p)
		ref := New(DeriveSeed(9, uint64(pr.n)))
		chk := New(DeriveSeed(9, uint64(pr.n)))
		for i := 0; i < 50; i++ {
			if got, want := d.Sample(chk), ref.Binomial(pr.n, pr.p); got != want {
				t.Fatalf("after re-Init(%d, %v): dist %d, stream %d", pr.n, pr.p, got, want)
			}
		}
		_ = r
	}
	if d.N() != 5 {
		t.Fatalf("N() = %d after last Init, want 5", d.N())
	}
}

// TestBinomialDistConcurrentSharing: one initialized dist, many streams.
// Sample must not mutate the dist, so concurrent samplers with private
// streams must each reproduce their serial trajectories. Run with -race.
func TestBinomialDistConcurrentSharing(t *testing.T) {
	var d BinomialDist
	d.Init(1000, 0.37) // BTRS regime
	const workers = 8
	want := make([][]int, workers)
	for w := range want {
		s := New(DeriveSeed(3, uint64(w)))
		want[w] = make([]int, 500)
		for i := range want[w] {
			want[w][i] = d.Sample(s)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := New(DeriveSeed(3, uint64(w)))
			for i := 0; i < 500; i++ {
				if got := d.Sample(s); got != want[w][i] {
					t.Errorf("worker %d draw %d: %d, want %d", w, i, got, want[w][i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestBinomialDistMoments: mean and variance sanity for both regimes,
// independent of the stream-parity pin above.
func TestBinomialDistMoments(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{{40, 0.1}, {500, 0.25}, {500, 0.75}}
	r := New(123)
	for _, c := range cases {
		var d BinomialDist
		d.Init(c.n, c.p)
		const trials = 20000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			v := float64(d.Sample(r))
			sum += v
			sumsq += v * v
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-wantMean) > 5*sd/math.Sqrt(trials) {
			t.Errorf("n=%d p=%v: mean %.3f, want %.3f", c.n, c.p, mean, wantMean)
		}
		variance := sumsq/trials - mean*mean
		if math.Abs(variance-sd*sd) > 0.1*sd*sd+1 {
			t.Errorf("n=%d p=%v: variance %.3f, want %.3f", c.n, c.p, variance, sd*sd)
		}
	}
}
