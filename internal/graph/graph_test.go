package graph

import (
	"testing"
)

func TestRingStructure(t *testing.T) {
	g, err := Ring(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("N = %d", g.N())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if g.MinDegree() != 4 {
		t.Fatalf("MinDegree = %d", g.MinDegree())
	}
	if !g.IsConnected() {
		t.Fatal("ring not connected")
	}
	// Vertex 0's neighbors are {1, 2, 8, 9}.
	want := map[int32]bool{1: true, 2: true, 8: true, 9: true}
	for _, w := range g.Neighbors(0) {
		if !want[w] {
			t.Fatalf("unexpected neighbor %d of 0", w)
		}
		delete(want, w)
	}
	if len(want) != 0 {
		t.Fatalf("missing neighbors: %v", want)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := Ring(4, 2); err == nil {
		t.Error("Ring(4,2) accepted")
	}
	if _, err := Ring(10, 0); err == nil {
		t.Error("Ring(10,0) accepted")
	}
}

func TestRandomRegularProperties(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{50, 4}, {101, 8}, {64, 3}} {
		g, err := RandomRegular(tc.n, tc.d, 7)
		if err != nil {
			t.Fatalf("RandomRegular(%d, %d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < tc.n; v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("n=%d d=%d: vertex %d has degree %d", tc.n, tc.d, v, g.Degree(v))
			}
			// Simple graph: no self-loops, no duplicates.
			seen := map[int32]bool{}
			for _, w := range g.Neighbors(v) {
				if int(w) == v {
					t.Fatalf("self-loop at %d", v)
				}
				if seen[w] {
					t.Fatalf("duplicate edge %d-%d", v, w)
				}
				seen[w] = true
			}
		}
		// d-regular graphs with d >= 3 are connected w.h.p.
		if tc.d >= 3 && !g.IsConnected() {
			t.Fatalf("n=%d d=%d: disconnected", tc.n, tc.d)
		}
	}
}

func TestRandomRegularValidation(t *testing.T) {
	if _, err := RandomRegular(10, 0, 1); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := RandomRegular(10, 10, 1); err == nil {
		t.Error("degree n accepted")
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Error("odd n*d accepted")
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a, err := RandomRegular(40, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(40, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 40; v++ {
		an, bn := a.Neighbors(v), b.Neighbors(v)
		if len(an) != len(bn) {
			t.Fatal("nondeterministic generation")
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatal("nondeterministic generation")
			}
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(200, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Expected degree ~20; check the total edge count is in a sane band.
	total := 0
	for v := 0; v < 200; v++ {
		total += g.Degree(v)
	}
	edges := total / 2
	// E = C(200,2)*0.1 = 1990, sd ~ 42.
	if edges < 1700 || edges > 2300 {
		t.Fatalf("G(200, .1) has %d edges", edges)
	}
	if !g.IsConnected() {
		t.Fatal("G(200, .1) should be connected w.h.p.")
	}
	if _, err := ErdosRenyi(0, 0.5, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ErdosRenyi(10, 1.5, 1); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestErdosRenyiEdgeProbabilities(t *testing.T) {
	empty, err := ErdosRenyi(20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if empty.MinDegree() != 0 || empty.IsConnected() {
		t.Fatal("G(20, 0) should be empty and disconnected")
	}
	full, err := ErdosRenyi(20, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if full.Degree(v) != 19 {
			t.Fatalf("G(20,1) vertex %d degree %d", v, full.Degree(v))
		}
	}
}

func TestIsConnectedDetectsSplit(t *testing.T) {
	// Two disjoint triangles.
	g := build(6, []int32{0, 1, 2, 3, 4, 5}, []int32{1, 2, 0, 4, 5, 3})
	if g.IsConnected() {
		t.Fatal("disjoint triangles reported connected")
	}
}

func TestCSRMatchesNeighbors(t *testing.T) {
	g, err := RandomRegular(60, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	off, nbrs := g.CSR()
	if len(off) != g.N()+1 {
		t.Fatalf("CSR off length %d, want %d", len(off), g.N()+1)
	}
	if int(off[g.N()]) != len(nbrs) {
		t.Fatalf("CSR off[n] = %d, nbrs length %d", off[g.N()], len(nbrs))
	}
	for v := 0; v < g.N(); v++ {
		row := nbrs[off[v]:off[v+1]]
		want := g.Neighbors(v)
		if len(row) != len(want) {
			t.Fatalf("vertex %d: CSR row length %d, Neighbors %d", v, len(row), len(want))
		}
		for j := range row {
			if row[j] != want[j] {
				t.Fatalf("vertex %d neighbor %d: CSR %d, Neighbors %d", v, j, row[j], want[j])
			}
		}
	}
	if g.MaxDegree() != 4 || g.MinDegree() != 4 {
		t.Fatalf("regular graph degrees: max %d min %d, want 4", g.MaxDegree(), g.MinDegree())
	}
}
