// Package graph provides the communication topologies for the
// graph-restricted extension of the noisy PULL model (experiment E18).
//
// The paper's model is the complete graph: every agent samples uniformly
// from the whole population. Restricting samples to graph neighborhoods
// probes how much "well-mixedness" the results actually need: random
// regular graphs are expanders and behave like the complete graph, while
// low-dimensional topologies (rings) break the uniform-source-access
// assumption underlying the weak-opinion analysis.
//
// Graphs are simple (no self-loops, no multi-edges) and undirected.
package graph

import (
	"fmt"

	"noisypull/internal/rng"
)

// Graph is an undirected simple graph on vertices 0..n-1 stored as
// adjacency lists. Construct with one of the generators; the zero value is
// not usable.
type Graph struct {
	n   int
	adj [][]int32
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v without copying; callers must
// not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// MinDegree returns the smallest vertex degree.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// IsConnected reports whether the graph is connected (BFS).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	queue := make([]int32, 0, g.n)
	queue = append(queue, 0)
	seen[0] = true
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				visited++
				queue = append(queue, w)
			}
		}
	}
	return visited == g.n
}

// build assembles a Graph from an edge set given as pair slices.
func build(n int, us, vs []int32) *Graph {
	adj := make([][]int32, n)
	deg := make([]int, n)
	for i := range us {
		deg[us[i]]++
		deg[vs[i]]++
	}
	for v := range adj {
		adj[v] = make([]int32, 0, deg[v])
	}
	for i := range us {
		adj[us[i]] = append(adj[us[i]], vs[i])
		adj[vs[i]] = append(adj[vs[i]], us[i])
	}
	return &Graph{n: n, adj: adj}
}

// Ring returns the circulant graph on n vertices where every vertex is
// adjacent to its k nearest neighbors on each side (degree 2k). It requires
// n ≥ 2k+1 and k ≥ 1.
func Ring(n, k int) (*Graph, error) {
	if k < 1 || n < 2*k+1 {
		return nil, fmt.Errorf("graph: Ring(n=%d, k=%d) needs n >= 2k+1, k >= 1", n, k)
	}
	var us, vs []int32
	for v := 0; v < n; v++ {
		for d := 1; d <= k; d++ {
			w := (v + d) % n
			us = append(us, int32(v))
			vs = append(vs, int32(w))
		}
	}
	return build(n, us, vs), nil
}

// RandomRegular returns a random d-regular simple graph via the pairing
// (configuration) model followed by random edge-swap repair of self-loops
// and duplicate edges (pure rejection is infeasible beyond small d: the
// acceptance probability is ≈ exp(−(d²−1)/4)). It requires n·d even,
// 1 ≤ d < n.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular degree %d out of range for n = %d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular needs n·d even, got %d·%d", n, d)
	}
	r := rng.New(seed)
	half := make([]int32, n*d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			half[v*d+j] = int32(v)
		}
	}
	r.Shuffle(len(half), func(i, j int) { half[i], half[j] = half[j], half[i] })

	type edge struct{ a, b int32 }
	norm := func(a, b int32) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	m := len(half) / 2
	us := make([]int32, m)
	vs := make([]int32, m)
	seen := make(map[edge]int, m) // multiplicity of each normalized edge
	for i := 0; i < m; i++ {
		us[i], vs[i] = half[2*i], half[2*i+1]
		seen[norm(us[i], vs[i])]++
	}
	// bad reports whether edge i is a self-loop or part of a multi-edge.
	bad := func(i int) bool {
		if us[i] == vs[i] {
			return true
		}
		return seen[norm(us[i], vs[i])] > 1
	}
	// Repair by random double-edge swaps: replace (a,b),(c,d) with
	// (a,d),(c,b) when that strictly removes a conflict without adding one.
	maxSwaps := 200 * m
	for swaps := 0; swaps < maxSwaps; swaps++ {
		i := -1
		for j := 0; j < m; j++ {
			if bad(j) {
				i = j
				break
			}
		}
		if i < 0 {
			return build(n, us, vs), nil
		}
		j := r.Intn(m)
		if j == i {
			continue
		}
		a, b := us[i], vs[i]
		c, d2 := us[j], vs[j]
		// Proposed replacements (a,d2) and (c,b).
		if a == d2 || c == b {
			continue
		}
		if seen[norm(a, d2)] > 0 || seen[norm(c, b)] > 0 {
			continue
		}
		seen[norm(a, b)]--
		seen[norm(c, d2)]--
		vs[i], vs[j] = d2, b
		seen[norm(a, d2)]++
		seen[norm(c, b)]++
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d) repair did not converge", n, d)
}

// ErdosRenyi returns a G(n, p) random graph. Isolated vertices are
// possible at small p; callers that need positive minimum degree should
// check MinDegree.
func ErdosRenyi(n int, p float64, seed uint64) (*Graph, error) {
	if n < 1 || p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: ErdosRenyi(n=%d, p=%v) invalid", n, p)
	}
	r := rng.New(seed)
	var us, vs []int32
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			if r.Bernoulli(p) {
				us = append(us, int32(v))
				vs = append(vs, int32(w))
			}
		}
	}
	return build(n, us, vs), nil
}
