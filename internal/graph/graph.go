// Package graph provides the communication topologies for the
// graph-restricted extension of the noisy PULL model (experiment E18).
//
// The paper's model is the complete graph: every agent samples uniformly
// from the whole population. Restricting samples to graph neighborhoods
// probes how much "well-mixedness" the results actually need: random
// regular graphs are expanders and behave like the complete graph, while
// low-dimensional topologies (rings) break the uniform-source-access
// assumption underlying the weak-opinion analysis.
//
// Graphs are simple (no self-loops, no multi-edges) and undirected.
package graph

import (
	"fmt"

	"noisypull/internal/rng"
)

// Graph is an undirected simple graph on vertices 0..n-1 stored in
// compressed sparse row form: one flat neighbor slice plus per-vertex
// offsets. The layout costs two allocations per graph instead of one per
// vertex and keeps each adjacency list contiguous, which matters to the
// per-trial graph construction of experiment E18. Construct with one of the
// generators; the zero value is not usable.
type Graph struct {
	n    int
	off  []int32 // n+1 offsets into nbrs; vertex v owns nbrs[off[v]:off[v+1]]
	nbrs []int32
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the adjacency list of v without copying; callers must
// not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.nbrs[g.off[v]:g.off[v+1]] }

// CSR returns the graph's raw compressed-sparse-row arrays without copying:
// off has n+1 entries and vertex v's neighbors are nbrs[off[v]:off[v+1]].
// Bulk kernels that sweep whole vertex ranges use it to iterate adjacency
// lists with one shared bounds computation instead of a Neighbors call (and
// its implied slice-header construction) per vertex. Callers must not
// modify either slice.
func (g *Graph) CSR() (off, nbrs []int32) { return g.off, g.nbrs }

// MaxDegree returns the largest vertex degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the smallest vertex degree.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// IsConnected reports whether the graph is connected (BFS).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	queue := make([]int32, 0, g.n)
	queue = append(queue, 0)
	seen[0] = true
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if !seen[w] {
				seen[w] = true
				visited++
				queue = append(queue, w)
			}
		}
	}
	return visited == g.n
}

// build assembles a Graph from an edge set given as pair slices. Neighbors
// are laid down in edge order, matching what per-vertex appends would
// produce, so the CSR layout does not change any sampling trace.
func build(n int, us, vs []int32) *Graph {
	off := make([]int32, n+1)
	for i := range us {
		off[us[i]+1]++
		off[vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	nbrs := make([]int32, off[n])
	cur := make([]int32, n)
	copy(cur, off[:n])
	for i := range us {
		u, v := us[i], vs[i]
		nbrs[cur[u]] = v
		cur[u]++
		nbrs[cur[v]] = u
		cur[v]++
	}
	return &Graph{n: n, off: off, nbrs: nbrs}
}

// Ring returns the circulant graph on n vertices where every vertex is
// adjacent to its k nearest neighbors on each side (degree 2k). It requires
// n ≥ 2k+1 and k ≥ 1.
func Ring(n, k int) (*Graph, error) {
	if k < 1 || n < 2*k+1 {
		return nil, fmt.Errorf("graph: Ring(n=%d, k=%d) needs n >= 2k+1, k >= 1", n, k)
	}
	var us, vs []int32
	for v := 0; v < n; v++ {
		for d := 1; d <= k; d++ {
			w := (v + d) % n
			us = append(us, int32(v))
			vs = append(vs, int32(w))
		}
	}
	return build(n, us, vs), nil
}

// edgeSet is a linear-probing hash multiset of normalized edge keys. It
// replaces a map[edge]int in RandomRegular's repair loop: the table is one
// allocation sized up front, and slots are never vacated (multiplicities
// drop to zero but the key stays), which keeps probing correct without
// tombstones. The repair loop inserts at most 3m distinct keys (m pairing
// edges plus two per conflict-removing swap, of which there are at most m),
// so a table of 4m power-of-two slots stays below 3/4 load.
type edgeSet struct {
	keys []uint64 // normalized key + 1; 0 marks an empty slot
	cnt  []int32
	mask uint64
}

func newEdgeSet(edges int) *edgeSet {
	size := 16
	for size < 4*edges {
		size *= 2
	}
	return &edgeSet{
		keys: make([]uint64, size),
		cnt:  make([]int32, size),
		mask: uint64(size - 1),
	}
}

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return (uint64(uint32(a))<<32 | uint64(uint32(b))) + 1
}

// slot returns the index holding key, or the empty slot where it belongs.
func (s *edgeSet) slot(key uint64) int {
	i := (key * 0x9e3779b97f4a7c15) & s.mask
	for s.keys[i] != 0 && s.keys[i] != key {
		i = (i + 1) & s.mask
	}
	return int(i)
}

func (s *edgeSet) add(key uint64, delta int32) {
	i := s.slot(key)
	s.keys[i] = key
	s.cnt[i] += delta
}

func (s *edgeSet) count(key uint64) int32 {
	i := s.slot(key)
	if s.keys[i] == 0 {
		return 0
	}
	return s.cnt[i]
}

// RandomRegular returns a random d-regular simple graph via the pairing
// (configuration) model followed by random edge-swap repair of self-loops
// and duplicate edges (pure rejection is infeasible beyond small d: the
// acceptance probability is ≈ exp(−(d²−1)/4)). It requires n·d even,
// 1 ≤ d < n.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular degree %d out of range for n = %d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular needs n·d even, got %d·%d", n, d)
	}
	r := rng.New(seed)
	half := make([]int32, n*d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			half[v*d+j] = int32(v)
		}
	}
	r.Shuffle(len(half), func(i, j int) { half[i], half[j] = half[j], half[i] })

	m := len(half) / 2
	us := make([]int32, m)
	vs := make([]int32, m)
	seen := newEdgeSet(m) // multiplicity of each normalized edge
	for i := 0; i < m; i++ {
		us[i], vs[i] = half[2*i], half[2*i+1]
		seen.add(edgeKey(us[i], vs[i]), 1)
	}
	// bad reports whether edge i is a self-loop or part of a multi-edge.
	bad := func(i int) bool {
		if us[i] == vs[i] {
			return true
		}
		return seen.count(edgeKey(us[i], vs[i])) > 1
	}
	// Repair by random double-edge swaps: replace (a,b),(c,d) with
	// (a,d),(c,b) when that strictly removes a conflict without adding one.
	maxSwaps := 200 * m
	for swaps := 0; swaps < maxSwaps; swaps++ {
		i := -1
		for j := 0; j < m; j++ {
			if bad(j) {
				i = j
				break
			}
		}
		if i < 0 {
			return build(n, us, vs), nil
		}
		j := r.Intn(m)
		if j == i {
			continue
		}
		a, b := us[i], vs[i]
		c, d2 := us[j], vs[j]
		// Proposed replacements (a,d2) and (c,b).
		if a == d2 || c == b {
			continue
		}
		if seen.count(edgeKey(a, d2)) > 0 || seen.count(edgeKey(c, b)) > 0 {
			continue
		}
		seen.add(edgeKey(a, b), -1)
		seen.add(edgeKey(c, d2), -1)
		vs[i], vs[j] = d2, b
		seen.add(edgeKey(a, d2), 1)
		seen.add(edgeKey(c, b), 1)
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d) repair did not converge", n, d)
}

// ErdosRenyi returns a G(n, p) random graph. Isolated vertices are
// possible at small p; callers that need positive minimum degree should
// check MinDegree.
func ErdosRenyi(n int, p float64, seed uint64) (*Graph, error) {
	if n < 1 || p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: ErdosRenyi(n=%d, p=%v) invalid", n, p)
	}
	r := rng.New(seed)
	var us, vs []int32
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			if r.Bernoulli(p) {
				us = append(us, int32(v))
				vs = append(vs, int32(w))
			}
		}
	}
	return build(n, us, vs), nil
}
