// Package buildinfo derives a human-readable version string for the
// repository's binaries from the metadata the Go toolchain embeds in every
// build (module version, VCS revision, dirty flag). All cmd/ binaries expose
// it behind a -version flag so deployed artifacts can be traced back to a
// commit without a separate stamping step.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns the version line printed by -version:
//
//	<name> <module version> (rev <revision>[, dirty]) <go version>
//
// Fields that the build did not record (for example the VCS revision of a
// non-git build, or a "(devel)" module version) degrade gracefully.
func String(name string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(Version())
	b.WriteByte(' ')
	b.WriteString(runtime.Version())
	return b.String()
}

// Version returns the module version plus VCS revision, without the binary
// name or Go version.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "(unknown)"
	}
	version := bi.Main.Version
	if version == "" {
		version = "(devel)"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return version
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += ", dirty"
	}
	return version + " (rev " + rev + ")"
}
