// Package report renders experiment results for terminals and files: plain
// text tables, CSV series, and ASCII line plots. It is the presentation
// layer of the benchmark harness — every experiment in the harness emits a
// Table and/or a Series that regenerates the corresponding artifact of the
// paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells are formatted with %v; floats use a compact
// %.4g representation.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return fmt.Sprintf("%.4g", v)
	case float32:
		return fmt.Sprintf("%.4g", v)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	return append([]string(nil), t.rows[i]...)
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return sb.String()
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for cells containing
// commas, quotes, or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
