package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 2.5)
	tb.AddRow("gamma", "x")
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "2.5", "gamma", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestTableRowCopy(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("v")
	row := tb.Row(0)
	row[0] = "mutated"
	if tb.Row(0)[0] != "v" {
		t.Fatal("Row did not copy")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(3.14159265)
	if got := tb.Row(0)[0]; got != "3.142" {
		t.Fatalf("float cell = %q", got)
	}
	tb.AddRow(float32(2))
	if got := tb.Row(1)[0]; got != "2" {
		t.Fatalf("float32 cell = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", `has "quotes", and comma`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("CSV header wrong: %q", got)
	}
	if !strings.Contains(got, `"has ""quotes"", and comma"`) {
		t.Fatalf("CSV quoting wrong: %q", got)
	}
}

func TestNewSeriesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	NewSeries("bad", []float64{1, 2}, []float64{1})
}

func TestPlotRendering(t *testing.T) {
	p := &Plot{Title: "Growth", XLabel: "n", YLabel: "rounds", Width: 40, Height: 10}
	p.Add(NewSeries("linear", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}))
	p.Add(NewSeries("quadratic", []float64{1, 2, 3, 4}, []float64{1, 4, 9, 16}))
	out := p.String()
	for _, want := range []string{"Growth", "linear", "quadratic", "*", "+", "x: n", "y: rounds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot output missing %q:\n%s", want, out)
		}
	}
}

func TestPlotLogAxes(t *testing.T) {
	p := &Plot{Title: "loglog", LogX: true, LogY: true, Width: 30, Height: 8}
	p.Add(NewSeries("pow", []float64{1, 10, 100, 1000}, []float64{2, 20, 200, 2000}))
	out := p.String()
	if !strings.Contains(out, "1000") {
		t.Fatalf("log axis labels missing:\n%s", out)
	}
}

func TestPlotEmptyData(t *testing.T) {
	p := &Plot{Title: "empty"}
	out := p.String()
	if !strings.Contains(out, "no finite data") {
		t.Fatalf("empty plot output: %q", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := &Plot{Width: 20, Height: 5}
	p.Add(NewSeries("const", []float64{1, 1, 1}, []float64{5, 5, 5}))
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not plotted:\n%s", out)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteSeriesCSV(&sb,
		NewSeries("a", []float64{1, 2}, []float64{3, 4}),
		NewSeries("b", []float64{5}, []float64{6}),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "series,x,y\na,1,3\na,2,4\nb,5,6\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
