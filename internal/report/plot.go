package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is a named sequence of (x, y) points — the unit the harness uses
// to regenerate a figure curve.
type Series struct {
	Name string
	X, Y []float64
}

// NewSeries builds a series, panicking on length mismatch (a programming
// error in experiment code).
func NewSeries(name string, x, y []float64) Series {
	if len(x) != len(y) {
		panic(fmt.Sprintf("report: series %q has %d x and %d y values", name, len(x), len(y)))
	}
	return Series{Name: name, X: x, Y: y}
}

// Plot is an ASCII line plot of one or more series on shared axes. Marks
// cycle through per-series glyphs; axis ranges are computed from the data.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 20)
	LogX   bool
	LogY   bool
	series []Series
}

// Add appends a series to the plot.
func (p *Plot) Add(s Series) { p.series = append(p.series, s) }

var plotGlyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// WriteTo renders the plot. It implements io.WriterTo.
func (p *Plot) WriteTo(w io.Writer) (int64, error) {
	width := p.Width
	if width <= 0 {
		width = 72
	}
	height := p.Height
	if height <= 0 {
		height = 20
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if p.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if p.LogY {
			return math.Log10(v)
		}
		return v
	}
	points := 0
	for _, s := range p.series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if points == 0 {
		n, err := io.WriteString(w, p.Title+"\n(no finite data)\n")
		return int64(n), err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
			grid[row][col] = glyph
		}
	}

	var sb strings.Builder
	if p.Title != "" {
		sb.WriteString(p.Title + "\n")
	}
	yTop := formatAxis(minY, maxY, p.LogY, true)
	yBot := formatAxis(minY, maxY, p.LogY, false)
	labelWidth := len(yTop)
	if len(yBot) > labelWidth {
		labelWidth = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = pad(yTop, labelWidth)
		case height - 1:
			label = pad(yBot, labelWidth)
		}
		sb.WriteString(label + " |" + string(row) + "\n")
	}
	sb.WriteString(strings.Repeat(" ", labelWidth) + " +" + strings.Repeat("-", width) + "\n")
	xBot := formatAxis(minX, maxX, p.LogX, false)
	xTop := formatAxis(minX, maxX, p.LogX, true)
	gap := width - len(xBot) - len(xTop)
	if gap < 1 {
		gap = 1
	}
	sb.WriteString(strings.Repeat(" ", labelWidth+2) + xBot + strings.Repeat(" ", gap) + xTop + "\n")
	if p.XLabel != "" || p.YLabel != "" {
		sb.WriteString(fmt.Sprintf("%sx: %s   y: %s\n", strings.Repeat(" ", labelWidth+2), p.XLabel, p.YLabel))
	}
	for si, s := range p.series {
		sb.WriteString(fmt.Sprintf("%s%c %s\n", strings.Repeat(" ", labelWidth+2), plotGlyphs[si%len(plotGlyphs)], s.Name))
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the plot to a string.
func (p *Plot) String() string {
	var sb strings.Builder
	if _, err := p.WriteTo(&sb); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// formatAxis renders an axis endpoint; log axes show the de-logged value.
func formatAxis(min, max float64, logScale, top bool) string {
	v := min
	if top {
		v = max
	}
	if logScale {
		v = math.Pow(10, v)
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteSeriesCSV writes one or more series as long-form CSV with columns
// series,x,y.
func WriteSeriesCSV(w io.Writer, series ...Series) error {
	if _, err := io.WriteString(w, "series,x,y\n"); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
