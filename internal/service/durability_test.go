package service

// Service-level durability tests: terminal jobs survive a restart, interrupted
// jobs re-enqueue and complete with results identical to an uninterrupted run,
// checkpointed trials resume mid-run, unresumable jobs surface as "lost to
// crash", the watchdog kills stuck jobs, /readyz load-sheds, StreamFrom
// filters already-delivered events, and a Submit racing Drain never leaves a
// journaled-but-orphaned job (the regression test runs under -race).

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"noisypull"
)

// openJournaled starts a journal-backed service and waits for recovery.
func openJournaled(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	cfg.JournalDir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, s)
	return s
}

func waitReady(t *testing.T, s *Service) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if s.ready.Load() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("service never became ready")
}

// directResult runs the spec's configuration for one seed straight on the
// engine — the uninterrupted control a recovered job must match bit-for-bit.
func directResult(t *testing.T, spec JobSpec, seed uint64) SeedResult {
	t.Helper()
	cfg, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	cfg.Workers = 1
	res, err := noisypull.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return SeedResult{
		Seed:            seed,
		Rounds:          res.Rounds,
		Converged:       res.Converged,
		FirstAllCorrect: res.FirstAllCorrect,
		CorrectOpinion:  res.CorrectOpinion,
		FinalCorrect:    res.FinalCorrect,
	}
}

func sameSeedResult(a, b SeedResult) bool {
	return a.Seed == b.Seed && a.Rounds == b.Rounds && a.Converged == b.Converged &&
		a.FirstAllCorrect == b.FirstAllCorrect && a.CorrectOpinion == b.CorrectOpinion &&
		a.FinalCorrect == b.FinalCorrect
}

// TestRecoveryRestoresTerminalJobs restarts the service over a journal whose
// only job finished cleanly: it must come back queryable with identical
// results, and the id counter must continue past it.
func TestRecoveryRestoresTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	s1 := openJournaled(t, dir, Config{Workers: 1})
	st, err := s1.Submit(quickSpec(5, 9))
	if err != nil {
		t.Fatal(err)
	}
	before := waitState(t, s1, st.ID, StateDone)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := openJournaled(t, dir, Config{Workers: 1})
	defer s2.Close()
	summary, done := s2.ReplayStatus()
	if !done || summary.Restored != 1 || summary.Resumed != 0 || summary.Lost != 0 {
		t.Fatalf("replay summary %+v", summary)
	}
	after, err := s2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != StateDone || len(after.Results) != len(before.Results) {
		t.Fatalf("restored job: state=%s results=%d", after.State, len(after.Results))
	}
	for i := range after.Results {
		if !sameSeedResult(after.Results[i], before.Results[i]) {
			t.Fatalf("seed %d: restored %+v != original %+v", after.Results[i].Seed, after.Results[i], before.Results[i])
		}
	}
	st2, err := s2.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatalf("id counter did not advance past recovered jobs: %s", st2.ID)
	}
	waitState(t, s2, st2.ID, StateDone)
}

// TestRecoveryCompletesInterruptedJob replays a journal captured mid-job (a
// submit record plus one finished seed — what a kill -9 between trials leaves
// behind): the job must re-enqueue, keep its completed prefix, run the
// remaining seed, and end with results identical to an uninterrupted run. The
// event sequence must continue past the journaled high-water mark.
func TestRecoveryCompletesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec(5, 9)
	spec.normalize()
	first := directResult(t, spec, 5)
	const journaledSeq = 1000
	jl, err := openJournal(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	jl.appendSubmit("j-000004", &spec)
	jl.appendState("j-000004", StateRunning)
	jl.appendSeed("j-000004", 5, &first, journaledSeq)
	jl.close()

	s := openJournaled(t, dir, Config{Workers: 1})
	defer s.Close()
	summary, _ := s.ReplayStatus()
	if summary.Resumed != 1 || summary.Lost != 0 || summary.Restored != 0 {
		t.Fatalf("replay summary %+v", summary)
	}
	final := waitState(t, s, "j-000004", StateDone)
	if len(final.Results) != 2 {
		t.Fatalf("resumed job has %d results", len(final.Results))
	}
	if !sameSeedResult(final.Results[0], first) {
		t.Fatalf("recovered prefix changed: %+v", final.Results[0])
	}
	if want := directResult(t, spec, 9); !sameSeedResult(final.Results[1], want) {
		t.Fatalf("post-recovery seed: %+v != control %+v", final.Results[1], want)
	}
	j, err := s.lookup("j-000004")
	if err != nil {
		t.Fatal(err)
	}
	if seq := j.seq.Load(); seq <= journaledSeq {
		t.Fatalf("event seq %d did not continue past journaled %d", seq, journaledSeq)
	}
	if got := s.metrics.recovered.Load(); got != 1 {
		t.Fatalf("simd_jobs_recovered_total = %d", got)
	}
}

// resumableSpec is a deterministic non-converging voter run: exactly
// MaxRounds rounds, long enough to checkpoint mid-flight.
func resumableSpec(seeds ...uint64) JobSpec {
	return JobSpec{
		N: 500, H: 1, Sources1: 1, Sources0: 0,
		Delta:            0.2,
		Protocol:         "voter",
		MaxRounds:        400,
		StabilityWindow:  400,
		CheckpointRounds: 100,
		Seeds:            seeds,
	}
}

// TestRecoveryResumesFromCheckpoint journals an engine checkpoint (captured
// from a real runner at round 100) and restarts: the recovered job must
// restore it, run only the remaining rounds, and still produce the exact
// result of an uninterrupted run.
func TestRecoveryResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := resumableSpec(7)
	spec.normalize()
	cfg, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 7
	cfg.Workers = 1
	runner, err := noisypull.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var snap []byte
	var snapRound int
	runner.SetCheckpoint(100, func(round int, data []byte) {
		if snap == nil {
			snap, snapRound = append([]byte(nil), data...), round
			cancel()
		}
	})
	if _, err := runner.RunContext(ctx); err == nil {
		t.Fatal("interrupted control run unexpectedly completed")
	}
	runner.Close()
	cancel()
	if snap == nil {
		t.Fatal("no checkpoint captured")
	}

	jl, err := openJournal(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	jl.appendSubmit("j-000001", &spec)
	jl.appendState("j-000001", StateRunning)
	jl.appendCheckpoint("j-000001", 7, snapRound, snap, 100)
	jl.close()

	s := openJournaled(t, dir, Config{Workers: 1})
	defer s.Close()
	final := waitState(t, s, "j-000001", StateDone)
	if want := directResult(t, spec, 7); !sameSeedResult(final.Results[0], want) {
		t.Fatalf("resumed-from-checkpoint result %+v != uninterrupted control %+v", final.Results[0], want)
	}
	// The engine only replayed the rounds after the checkpoint; the skipped
	// prefix is credited to the rounds metric, not re-simulated. The round
	// counter covering checkpoint + remainder equals one full run's rounds
	// only if the restore actually took.
	if got := s.metrics.rounds.Load(); got != 400 {
		t.Fatalf("rounds metric %d, want 400 (checkpoint %d + remainder)", got, snapRound)
	}
}

// TestRecoveryMarksUnresumableJobsLost covers the spec-no-longer-builds path:
// the job must come back terminal-failed with a "lost to crash" reason rather
// than vanish or crash recovery.
func TestRecoveryMarksUnresumableJobsLost(t *testing.T) {
	dir := t.TempDir()
	bad := JobSpec{Protocol: "no-such-protocol", N: 100, H: 4, Sources1: 1, Delta: 0.2, Seeds: []uint64{1}}
	jl, err := openJournal(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	jl.appendSubmit("j-000009", &bad)
	jl.close()

	s := openJournaled(t, dir, Config{Workers: 1})
	defer s.Close()
	summary, _ := s.ReplayStatus()
	if summary.Lost != 1 || summary.Resumed != 0 {
		t.Fatalf("replay summary %+v", summary)
	}
	st, err := s.Get("j-000009")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "lost to crash") {
		t.Fatalf("lost job: state=%s error=%q", st.State, st.Error)
	}
}

// TestWatchdogKillsStuckJob pins the wall-clock budget: a non-terminating job
// with max_wall_ms set must be killed and finalized as failed (not
// cancelled), with the kill counted.
func TestWatchdogKillsStuckJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := endlessSpec(1)
	spec.MaxWallMS = 150
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "watchdog") {
		t.Fatalf("watchdogged job: state=%s error=%q", final.State, final.Error)
	}
	if got := s.metrics.watchdogKills.Load(); got != 1 {
		t.Fatalf("simd_watchdog_kills_total = %d", got)
	}
	// A fast job under the same budget is untouched.
	ok := quickSpec(1)
	ok.MaxWallMS = 60_000
	st2, err := s.Submit(ok)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st2.ID, StateDone)
}

// TestSubmitDrainRaceLeavesNoOrphans is the regression test for the
// journaled-then-orphaned race: submissions hammering the service while it
// drains must each end up either rejected (never journaled) or journaled with
// a terminal record — replay must find no job still pending. Run under -race.
func TestSubmitDrainRaceLeavesNoOrphans(t *testing.T) {
	dir := t.TempDir()
	s := openJournaled(t, dir, Config{Workers: 2, QueueCapacity: 64})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := s.Submit(quickSpec(1))
				if errors.Is(err, ErrDraining) {
					return
				}
				if err != nil && !errors.Is(err, ErrQueueFull) {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	out, err := replayJournal(s.journal.path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.jobs) == 0 {
		t.Fatal("race produced no journaled jobs; test is vacuous")
	}
	for _, j := range out.jobs {
		if j.terminal == "" {
			t.Errorf("job %s journaled without a terminal record (orphaned by drain)", j.id)
		}
	}
}

// TestReadyz covers the load-shedding endpoint: 200 when serving, 503 with
// status "replaying" before recovery finishes, 503 with "draining" during
// shutdown — and ErrNotReady from Submit while not ready.
func TestReadyz(t *testing.T) {
	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	ready, _, err := c.Ready(ctx)
	if err != nil || !ready {
		t.Fatalf("fresh service: ready=%v err=%v", ready, err)
	}

	s.ready.Store(false) // simulate an in-flight journal replay
	ready, _, err = c.Ready(ctx)
	if err != nil || ready {
		t.Fatalf("replaying service reported ready (err=%v)", err)
	}
	if _, err := s.Submit(quickSpec(1)); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Submit while replaying: %v", err)
	}
	if _, err := c.Submit(ctx, quickSpec(1)); !errors.Is(err, ErrNotReady) {
		t.Fatalf("client Submit while replaying: %v", err)
	}
	s.ready.Store(true)

	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ready, _, err = c.Ready(ctx)
	if err != nil || ready {
		t.Fatalf("draining service reported ready (err=%v)", err)
	}
}

// TestReadyzReportsReplaySummary checks that a recovered daemon's /readyz
// body carries the replay summary (the startup-log line, machine-readable).
func TestReadyzReportsReplaySummary(t *testing.T) {
	dir := t.TempDir()
	s1 := openJournaled(t, dir, Config{Workers: 1})
	st, err := s1.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, st.ID, StateDone)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := openJournaled(t, dir, Config{Workers: 1})
	defer s2.Close()
	srv := httptest.NewServer(s2.Handler())
	defer srv.Close()
	ready, replay, err := NewClient(srv.URL).Ready(context.Background())
	if err != nil || !ready {
		t.Fatalf("ready=%v err=%v", ready, err)
	}
	if replay == nil || replay.Restored != 1 || replay.Jobs != 1 {
		t.Fatalf("replay summary on /readyz: %+v", replay)
	}
}

// TestStreamFromSkipsDeliveredEvents pins the reconnect contract: a stream
// opened with ?from=N delivers only events with seq > N, in order.
func TestStreamFromSkipsDeliveredEvents(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	st, err := s.Submit(endlessSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)

	const from = 25
	var seqs []uint64
	errEnough := errors.New("enough")
	_, err = c.StreamFrom(ctx, st.ID, from, func(ev Event) error {
		seqs = append(seqs, ev.Seq)
		if len(seqs) >= 10 {
			return errEnough
		}
		return nil
	})
	if !errors.Is(err, errEnough) {
		t.Fatalf("stream: %v", err)
	}
	if len(seqs) < 10 {
		t.Fatalf("received %d events", len(seqs))
	}
	last := uint64(from)
	for _, q := range seqs {
		if q <= last {
			t.Fatalf("seq %d out of order or ≤ from (prev %d)", q, last)
		}
		last = q
	}
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
}
