package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"noisypull"
)

// JobSpec is the wire format of a simulation job: the JSON body of
// POST /v1/jobs. It mirrors the scalar surface of noisypull.Config (plus the
// cmd/noisypull protocol vocabulary) so a job is fully described by data —
// no Go values cross the API.
type JobSpec struct {
	// N is the population size.
	N int `json:"n"`
	// H is the per-round sample size.
	H int `json:"h"`
	// Sources1 and Sources0 are the source counts preferring 1 and 0.
	Sources1 int `json:"sources1"`
	Sources0 int `json:"sources0"`
	// Delta is the uniform noise level; ignored when P01/P10 are set.
	Delta float64 `json:"delta,omitempty"`
	// P01 and P10, when both set, select the asymmetric binary channel
	// (reduced automatically via Theorem 8).
	P01 *float64 `json:"p01,omitempty"`
	P10 *float64 `json:"p10,omitempty"`
	// Protocol is one of sf, ssf, voter, majority, trustbit.
	Protocol string `json:"protocol"`
	// C1 overrides the protocol constant c1 (0 = calibrated default).
	C1 float64 `json:"c1,omitempty"`
	// MaxRounds caps non-terminating protocols (0 = engine default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// StabilityWindow is the convergence window (0 = protocol default).
	StabilityWindow int `json:"stability_window,omitempty"`
	// Corruption is the adversarial initialization: none, wrong, random.
	Corruption string `json:"corruption,omitempty"`
	// Backend selects the observation sampler: auto, exact, aggregate, or
	// counts (baseline protocols only; rejected at submission otherwise).
	Backend string `json:"backend,omitempty"`
	// Seeds lists the independent trials to run, in order. Empty means the
	// single seed 1.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Faults optionally schedules runtime fault injection; each entry maps
	// to one noisypull.FaultEvent. Invalid schedules are rejected at
	// submission time (HTTP 400).
	Faults []FaultSpec `json:"faults,omitempty"`
	// MaxWallMS is the job's wall-clock budget in milliseconds, covering all
	// its seeds. A job exceeding it is killed by the watchdog and finalized
	// as failed. 0 means unlimited.
	MaxWallMS int64 `json:"max_wall_ms,omitempty"`
	// CheckpointRounds is the engine-checkpoint cadence: every this many
	// rounds, the running trial's resumable state is journaled, bounding the
	// work a crash can lose. 0 inherits the service default (off unless the
	// daemon sets one); checkpoints are only written when the daemon runs
	// with a journal. -1 disables checkpointing even against a service
	// default.
	CheckpointRounds int `json:"checkpoint_rounds,omitempty"`
}

// FaultSpec is the wire form of one scheduled fault event.
type FaultSpec struct {
	// Kind is one of corrupt, crash, churn, noise (matrix swap), drift
	// (gradual noise-level ramp).
	Kind string `json:"kind"`
	// Round fires the event at a fixed round; alternatively WindowLo/Hi
	// draw the fire round uniformly (seed-deterministically) from a window.
	Round    int `json:"round,omitempty"`
	WindowLo int `json:"window_lo,omitempty"`
	WindowHi int `json:"window_hi,omitempty"`
	// Fraction is the per-agent hit probability (corrupt, crash, churn).
	Fraction float64 `json:"fraction,omitempty"`
	// Mode is the corruption flavor for corrupt/churn: wrong or random.
	Mode string `json:"mode,omitempty"`
	// Duration is the crash length in rounds.
	Duration int `json:"duration,omitempty"`
	// Delta is the uniform noise level a noise swap installs, or the drift
	// target level.
	Delta float64 `json:"delta,omitempty"`
	// DriftRounds is the ramp length of a drift.
	DriftRounds int `json:"drift_rounds,omitempty"`
}

// shapeKey is the comparable identity of a spec up to its seeds: two jobs
// with equal shapes produce engine configurations that differ only in the
// seed, so a scheduler worker's leased runner can be rewound with Reset
// instead of rebuilt (the RunBatch reuse pattern, extended across jobs).
type shapeKey struct {
	n, h, s1, s0          int
	delta, p01, p10, c1   float64
	asym                  bool
	protocol, corruption  string
	backend               string
	maxRounds, stabilityW int
	faults                string
}

func (s *JobSpec) shape() shapeKey {
	k := shapeKey{
		n: s.N, h: s.H, s1: s.Sources1, s0: s.Sources0,
		delta: s.Delta, c1: s.C1,
		protocol: s.Protocol, corruption: s.Corruption, backend: s.Backend,
		maxRounds: s.MaxRounds, stabilityW: s.StabilityWindow,
		faults: faultFingerprint(s.Faults),
	}
	if s.P01 != nil && s.P10 != nil {
		k.asym, k.p01, k.p10, k.delta = true, *s.P01, *s.P10, 0
	}
	return k
}

// Fingerprint is the spec's config identity on the fleet wire: a short hex
// digest of the same shape key the scheduler leases runners by, so two specs
// share a fingerprint exactly when their engine configurations differ only
// in the seed. The coordinator keys leases by it and workers recompute it
// from the shipped spec — a mismatch (wire corruption, or a mixed-version
// fleet whose spec semantics drifted) rejects the lease instead of silently
// merging results from a different configuration.
func (s *JobSpec) Fingerprint() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", s.shape())))
	return hex.EncodeToString(sum[:8])
}

// faultFingerprint canonicalizes a fault schedule into a comparable string:
// equal fingerprints mean the built noisypull.FaultSchedule values are equal
// field-for-field, so a leased runner's compiled timeline depends only on
// the seed and the runner may be rewound with Reset across jobs.
func faultFingerprint(fs []FaultSpec) string {
	if len(fs) == 0 {
		return ""
	}
	return fmt.Sprintf("%+v", fs)
}

// Build compiles the spec into a validated engine configuration (Seed
// unset; the caller fills it per trial). Exported for the fleet worker,
// which executes leases outside the scheduler.
func (s *JobSpec) Build() (noisypull.Config, error) { return s.build() }

// build translates the spec into a validated noisypull.Config (Seed unset;
// the scheduler fills it per trial).
func (s *JobSpec) build() (noisypull.Config, error) {
	var zero noisypull.Config
	if s.Protocol == "" {
		return zero, fmt.Errorf("spec: protocol is required (sf, ssf, voter, majority, trustbit)")
	}

	alphabet := 2
	if s.Protocol == "ssf" || s.Protocol == "trustbit" {
		alphabet = 4
	}

	var nm *noisypull.NoiseMatrix
	var err error
	switch {
	case s.P01 != nil || s.P10 != nil:
		if s.P01 == nil || s.P10 == nil {
			return zero, fmt.Errorf("spec: set both p01 and p10 for an asymmetric channel")
		}
		if alphabet != 2 {
			return zero, fmt.Errorf("spec: p01/p10 define a binary channel; protocol %q uses alphabet 4", s.Protocol)
		}
		nm, err = noisypull.AsymmetricNoise(*s.P01, *s.P10)
	default:
		nm, err = noisypull.UniformNoise(alphabet, s.Delta)
	}
	if err != nil {
		return zero, fmt.Errorf("spec: %w", err)
	}

	var proto noisypull.Protocol
	if p, ok := testProtocols[s.Protocol]; ok {
		proto = p
		if d := p.Alphabet(); d != alphabet {
			if nm, err = noisypull.UniformNoise(d, s.Delta); err != nil {
				return zero, fmt.Errorf("spec: %w", err)
			}
			alphabet = d
		}
	}
	switch {
	case proto != nil:
	case s.Protocol == "sf":
		var opts []noisypull.SFOption
		if s.C1 > 0 {
			opts = append(opts, noisypull.WithSFConstant(s.C1))
		}
		proto = noisypull.NewSourceFilter(opts...)
	case s.Protocol == "ssf":
		var opts []noisypull.SSFOption
		if s.C1 > 0 {
			opts = append(opts, noisypull.WithSSFConstant(s.C1))
		}
		proto = noisypull.NewSelfStabilizing(opts...)
	case s.Protocol == "voter":
		proto = noisypull.VoterBaseline
	case s.Protocol == "majority":
		proto = noisypull.MajorityBaseline
	case s.Protocol == "trustbit":
		proto = noisypull.TrustBitBaseline
	default:
		return zero, fmt.Errorf("spec: unknown protocol %q", s.Protocol)
	}

	var mode noisypull.CorruptionMode
	switch s.Corruption {
	case "", "none":
		mode = noisypull.CorruptNone
	case "wrong":
		mode = noisypull.CorruptWrongConsensus
	case "random":
		mode = noisypull.CorruptRandom
	default:
		return zero, fmt.Errorf("spec: unknown corruption mode %q", s.Corruption)
	}

	var backend noisypull.Backend
	switch s.Backend {
	case "", "auto":
		backend = noisypull.BackendAuto
	case "exact":
		backend = noisypull.BackendExact
	case "aggregate":
		backend = noisypull.BackendAggregate
	case "counts":
		// Countability is checked by cfg.Check() below, so a spec pairing
		// the counts backend with a non-countable protocol fails here at
		// submission time (HTTP 400), not later as a failed job.
		backend = noisypull.BackendCounts
	default:
		return zero, fmt.Errorf("spec: unknown backend %q", s.Backend)
	}

	sched, err := buildFaults(s.Faults, alphabet)
	if err != nil {
		return zero, err
	}

	cfg := noisypull.Config{
		N:               s.N,
		H:               s.H,
		Sources1:        s.Sources1,
		Sources0:        s.Sources0,
		Noise:           nm,
		Protocol:        proto,
		Backend:         backend,
		Faults:          sched,
		MaxRounds:       s.MaxRounds,
		StabilityWindow: s.StabilityWindow,
		Corruption:      mode,
	}
	if s.MaxWallMS < 0 {
		return zero, fmt.Errorf("spec: negative max_wall_ms %d", s.MaxWallMS)
	}
	if s.CheckpointRounds < -1 {
		return zero, fmt.Errorf("spec: checkpoint_rounds %d (use a cadence, 0 for the service default, or -1 for off)", s.CheckpointRounds)
	}
	if err := cfg.Check(); err != nil {
		return zero, fmt.Errorf("spec: %w", err)
	}
	return cfg, nil
}

// buildFaults translates the wire schedule into a noisypull.FaultSchedule.
// Structural validation (windows, fractions, durations) happens in
// cfg.Check() via the engine's own Validate; only the string vocabularies
// and the swap-matrix construction are resolved here.
func buildFaults(fs []FaultSpec, alphabet int) (*noisypull.FaultSchedule, error) {
	if len(fs) == 0 {
		return nil, nil
	}
	sched := &noisypull.FaultSchedule{Events: make([]noisypull.FaultEvent, len(fs))}
	for i, f := range fs {
		ev := noisypull.FaultEvent{
			Round:       f.Round,
			WindowLo:    f.WindowLo,
			WindowHi:    f.WindowHi,
			Fraction:    f.Fraction,
			Duration:    f.Duration,
			Delta:       f.Delta,
			DriftRounds: f.DriftRounds,
		}
		switch f.Mode {
		case "":
			ev.Corruption = noisypull.CorruptNone
		case "wrong":
			ev.Corruption = noisypull.CorruptWrongConsensus
		case "random":
			ev.Corruption = noisypull.CorruptRandom
		default:
			return nil, fmt.Errorf("spec: fault %d: unknown mode %q (wrong, random)", i, f.Mode)
		}
		switch f.Kind {
		case "corrupt":
			ev.Kind = noisypull.FaultCorrupt
		case "crash":
			ev.Kind = noisypull.FaultCrash
		case "churn":
			ev.Kind = noisypull.FaultChurn
		case "noise":
			ev.Kind = noisypull.FaultNoiseSwap
			m, err := noisypull.UniformNoise(alphabet, f.Delta)
			if err != nil {
				return nil, fmt.Errorf("spec: fault %d: %w", i, err)
			}
			ev.Matrix = m
			ev.Delta = 0
		case "drift":
			ev.Kind = noisypull.FaultNoiseDrift
		default:
			return nil, fmt.Errorf("spec: fault %d: unknown kind %q (corrupt, crash, churn, noise, drift)", i, f.Kind)
		}
		sched.Events[i] = ev
	}
	return sched, nil
}

// testProtocols lets tests register protocols outside the wire vocabulary
// (e.g. a deliberately panicking one for the worker-crash regression test).
// Nil in production.
var testProtocols map[string]noisypull.Protocol

// normalize fills spec defaults (applied at submission so stored statuses
// show what actually ran).
func (s *JobSpec) normalize() {
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1}
	}
	if s.Corruption == "" {
		s.Corruption = "none"
	}
	if s.Backend == "" {
		s.Backend = "auto"
	}
}
