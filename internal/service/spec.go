package service

import (
	"fmt"

	"noisypull"
)

// JobSpec is the wire format of a simulation job: the JSON body of
// POST /v1/jobs. It mirrors the scalar surface of noisypull.Config (plus the
// cmd/noisypull protocol vocabulary) so a job is fully described by data —
// no Go values cross the API.
type JobSpec struct {
	// N is the population size.
	N int `json:"n"`
	// H is the per-round sample size.
	H int `json:"h"`
	// Sources1 and Sources0 are the source counts preferring 1 and 0.
	Sources1 int `json:"sources1"`
	Sources0 int `json:"sources0"`
	// Delta is the uniform noise level; ignored when P01/P10 are set.
	Delta float64 `json:"delta,omitempty"`
	// P01 and P10, when both set, select the asymmetric binary channel
	// (reduced automatically via Theorem 8).
	P01 *float64 `json:"p01,omitempty"`
	P10 *float64 `json:"p10,omitempty"`
	// Protocol is one of sf, ssf, voter, majority, trustbit.
	Protocol string `json:"protocol"`
	// C1 overrides the protocol constant c1 (0 = calibrated default).
	C1 float64 `json:"c1,omitempty"`
	// MaxRounds caps non-terminating protocols (0 = engine default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// StabilityWindow is the convergence window (0 = protocol default).
	StabilityWindow int `json:"stability_window,omitempty"`
	// Corruption is the adversarial initialization: none, wrong, random.
	Corruption string `json:"corruption,omitempty"`
	// Backend selects the observation sampler: auto, exact, aggregate, or
	// counts (baseline protocols only; rejected at submission otherwise).
	Backend string `json:"backend,omitempty"`
	// Seeds lists the independent trials to run, in order. Empty means the
	// single seed 1.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// shapeKey is the comparable identity of a spec up to its seeds: two jobs
// with equal shapes produce engine configurations that differ only in the
// seed, so a scheduler worker's leased runner can be rewound with Reset
// instead of rebuilt (the RunBatch reuse pattern, extended across jobs).
type shapeKey struct {
	n, h, s1, s0          int
	delta, p01, p10, c1   float64
	asym                  bool
	protocol, corruption  string
	backend               string
	maxRounds, stabilityW int
}

func (s *JobSpec) shape() shapeKey {
	k := shapeKey{
		n: s.N, h: s.H, s1: s.Sources1, s0: s.Sources0,
		delta: s.Delta, c1: s.C1,
		protocol: s.Protocol, corruption: s.Corruption, backend: s.Backend,
		maxRounds: s.MaxRounds, stabilityW: s.StabilityWindow,
	}
	if s.P01 != nil && s.P10 != nil {
		k.asym, k.p01, k.p10, k.delta = true, *s.P01, *s.P10, 0
	}
	return k
}

// build translates the spec into a validated noisypull.Config (Seed unset;
// the scheduler fills it per trial).
func (s *JobSpec) build() (noisypull.Config, error) {
	var zero noisypull.Config
	if s.Protocol == "" {
		return zero, fmt.Errorf("spec: protocol is required (sf, ssf, voter, majority, trustbit)")
	}

	alphabet := 2
	if s.Protocol == "ssf" || s.Protocol == "trustbit" {
		alphabet = 4
	}

	var nm *noisypull.NoiseMatrix
	var err error
	switch {
	case s.P01 != nil || s.P10 != nil:
		if s.P01 == nil || s.P10 == nil {
			return zero, fmt.Errorf("spec: set both p01 and p10 for an asymmetric channel")
		}
		if alphabet != 2 {
			return zero, fmt.Errorf("spec: p01/p10 define a binary channel; protocol %q uses alphabet 4", s.Protocol)
		}
		nm, err = noisypull.AsymmetricNoise(*s.P01, *s.P10)
	default:
		nm, err = noisypull.UniformNoise(alphabet, s.Delta)
	}
	if err != nil {
		return zero, fmt.Errorf("spec: %w", err)
	}

	var proto noisypull.Protocol
	switch s.Protocol {
	case "sf":
		var opts []noisypull.SFOption
		if s.C1 > 0 {
			opts = append(opts, noisypull.WithSFConstant(s.C1))
		}
		proto = noisypull.NewSourceFilter(opts...)
	case "ssf":
		var opts []noisypull.SSFOption
		if s.C1 > 0 {
			opts = append(opts, noisypull.WithSSFConstant(s.C1))
		}
		proto = noisypull.NewSelfStabilizing(opts...)
	case "voter":
		proto = noisypull.VoterBaseline
	case "majority":
		proto = noisypull.MajorityBaseline
	case "trustbit":
		proto = noisypull.TrustBitBaseline
	default:
		return zero, fmt.Errorf("spec: unknown protocol %q", s.Protocol)
	}

	var mode noisypull.CorruptionMode
	switch s.Corruption {
	case "", "none":
		mode = noisypull.CorruptNone
	case "wrong":
		mode = noisypull.CorruptWrongConsensus
	case "random":
		mode = noisypull.CorruptRandom
	default:
		return zero, fmt.Errorf("spec: unknown corruption mode %q", s.Corruption)
	}

	var backend noisypull.Backend
	switch s.Backend {
	case "", "auto":
		backend = noisypull.BackendAuto
	case "exact":
		backend = noisypull.BackendExact
	case "aggregate":
		backend = noisypull.BackendAggregate
	case "counts":
		// Countability is checked by cfg.Check() below, so a spec pairing
		// the counts backend with a non-countable protocol fails here at
		// submission time (HTTP 400), not later as a failed job.
		backend = noisypull.BackendCounts
	default:
		return zero, fmt.Errorf("spec: unknown backend %q", s.Backend)
	}

	cfg := noisypull.Config{
		N:               s.N,
		H:               s.H,
		Sources1:        s.Sources1,
		Sources0:        s.Sources0,
		Noise:           nm,
		Protocol:        proto,
		Backend:         backend,
		MaxRounds:       s.MaxRounds,
		StabilityWindow: s.StabilityWindow,
		Corruption:      mode,
	}
	if err := cfg.Check(); err != nil {
		return zero, fmt.Errorf("spec: %w", err)
	}
	return cfg, nil
}

// normalize fills spec defaults (applied at submission so stored statuses
// show what actually ran).
func (s *JobSpec) normalize() {
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1}
	}
	if s.Corruption == "" {
		s.Corruption = "none"
	}
	if s.Backend == "" {
		s.Backend = "auto"
	}
}
