package service

// Robustness tests for the scheduler: fault-schedule jobs (submission
// validation, fault events on the progress stream, per-seed recovery
// telemetry, lease shape identity), and worker survival when a protocol
// panics mid-run.

import (
	"strings"
	"testing"
	"time"

	"noisypull"
	"noisypull/internal/rng"
)

// panicProto blows up in Observe after a few rounds — a stand-in for a
// buggy protocol that must fail its own job without taking down the
// scheduler worker.
type panicProto struct{}

func (panicProto) Alphabet() int { return 2 }
func (panicProto) NewAgent(id int, role noisypull.Role, env noisypull.Env) noisypull.Agent {
	return &panicAgent{}
}

type panicAgent struct{ rounds int }

func (a *panicAgent) Display() int { return 0 }
func (a *panicAgent) Observe(counts []int, r *rng.Stream) {
	a.rounds++
	if a.rounds >= 3 {
		panic("deliberate test panic")
	}
}
func (a *panicAgent) Opinion() int { return 0 }

func TestPanickingJobFailsAlone(t *testing.T) {
	testProtocols = map[string]noisypull.Protocol{"test-panic": panicProto{}}
	defer func() { testProtocols = nil }()

	s := New(Config{Workers: 1, QueueCapacity: 4})
	defer s.Close()

	boom, err := s.Submit(JobSpec{
		N: 50, H: 4, Sources1: 1, Delta: 0.1,
		Protocol: "test-panic", MaxRounds: 100, Seeds: []uint64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := s.Submit(quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}

	st := waitTerminal(t, s, boom.ID)
	if st.State != StateFailed {
		t.Fatalf("panicking job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panic") || !strings.Contains(st.Error, "deliberate test panic") {
		t.Fatalf("panicking job error = %q, want the panic message", st.Error)
	}

	// The same worker goroutine must survive to run the next job...
	if got := waitState(t, s, after.ID, StateDone); got.State != StateDone {
		t.Fatalf("job after panic: %s", got.State)
	}
	// ...and the daemon must keep accepting work.
	again, err := s.Submit(quickSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, again.ID, StateDone)
	if s.metrics.panics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", s.metrics.panics.Load())
	}
}

func waitTerminal(t *testing.T, s *Service, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never terminated", id)
	return nil
}

// faultSpec is an SSF job corrupted to the wrong consensus mid-run; SSF
// recovers, so the job converges and carries recovery telemetry.
func faultSpec(seeds ...uint64) JobSpec {
	return JobSpec{
		N: 150, H: 8, Sources1: 2,
		Delta:    0.1,
		Protocol: "ssf",
		Seeds:    seeds,
		Faults: []FaultSpec{
			{Kind: "corrupt", Round: 3, Fraction: 1, Mode: "wrong"},
		},
	}
}

func TestFaultJobStreamsEventsAndTelemetry(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 4})
	defer s.Close()

	// Park the worker so the subscription attaches before the job runs.
	blocker, err := s.Submit(endlessSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)

	st, err := s.Submit(faultSpec(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}

	faultEvents := 0
	for ev := range ch {
		if ev.Type != "fault" {
			continue
		}
		faultEvents++
		if ev.Round != 3 || ev.Kind != "corrupt" || ev.Affected != 150 {
			t.Fatalf("fault event = %+v", ev)
		}
	}
	if faultEvents != 2 { // one per seed
		t.Fatalf("stream carried %d fault events, want 2", faultEvents)
	}

	final := waitState(t, s, st.ID, StateDone)
	if len(final.Results) != 2 {
		t.Fatalf("results = %+v", final.Results)
	}
	for _, sr := range final.Results {
		if !sr.Converged {
			t.Fatalf("seed %d did not recover: %+v", sr.Seed, sr)
		}
		if len(sr.Faults) != 1 {
			t.Fatalf("seed %d fault telemetry = %+v", sr.Seed, sr.Faults)
		}
		f := sr.Faults[0]
		if f.Round != 3 || f.Kind != "corrupt" || f.Affected != 150 || f.RecoveredAt < 3 {
			t.Fatalf("seed %d fault outcome = %+v", sr.Seed, f)
		}
	}
	if s.metrics.faults.Load() != 2 {
		t.Fatalf("fault counter = %d, want 2", s.metrics.faults.Load())
	}
}

func TestFaultSpecValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	bad := []JobSpec{
		// Unknown kind.
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2,
			Faults: []FaultSpec{{Kind: "meteor", Round: 1}}},
		// Unknown mode.
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2,
			Faults: []FaultSpec{{Kind: "corrupt", Round: 1, Fraction: 0.5, Mode: "sideways"}}},
		// Corrupt without a mode (engine validation bubbles up).
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2,
			Faults: []FaultSpec{{Kind: "corrupt", Round: 1, Fraction: 0.5}}},
		// Inverted window.
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2,
			Faults: []FaultSpec{{Kind: "churn", WindowLo: 9, WindowHi: 3, Fraction: 0.5}}},
		// Crash without duration.
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2,
			Faults: []FaultSpec{{Kind: "crash", Round: 1, Fraction: 0.5}}},
		// Drift above the uniform ceiling for the binary alphabet.
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2,
			Faults: []FaultSpec{{Kind: "drift", Round: 1, Delta: 0.9, DriftRounds: 3}}},
		// Crash faults are unsupported on the counts backend.
		{Protocol: "majority", N: 100, H: 4, Sources1: 1, Delta: 0.2, Backend: "counts",
			Faults: []FaultSpec{{Kind: "crash", Round: 1, Fraction: 0.5, Duration: 2}}},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("bad fault spec %d accepted", i)
		}
	}
	// The counts backend does support corruption and noise faults.
	ok := JobSpec{Protocol: "majority", N: 1000, H: 4, Sources1: 10, Delta: 0.2,
		Backend: "counts", MaxRounds: 50,
		Faults: []FaultSpec{
			{Kind: "corrupt", Round: 3, Fraction: 0.5, Mode: "random"},
			{Kind: "noise", Round: 5, Delta: 0.3},
		}}
	st, err := s.Submit(ok)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
}

func TestShapeKeyIncludesFaults(t *testing.T) {
	plain := quickSpec(1)
	faulted := quickSpec(1)
	faulted.Faults = []FaultSpec{{Kind: "crash", Round: 2, Fraction: 0.5, Duration: 2}}
	if plain.shape() == faulted.shape() {
		t.Fatal("fault schedule does not contribute to the shape key")
	}
	same := quickSpec(2) // seeds are excluded from the shape by design
	if plain.shape() != same.shape() {
		t.Fatal("seeds must not contribute to the shape key")
	}
	faulted2 := quickSpec(3)
	faulted2.Faults = []FaultSpec{{Kind: "crash", Round: 2, Fraction: 0.5, Duration: 2}}
	if faulted.shape() != faulted2.shape() {
		t.Fatal("equal fault schedules must share a shape key")
	}
}
