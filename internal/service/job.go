package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"noisypull"
)

// State is a job's position in its lifecycle. Transitions are
// pending → running → {done, failed, cancelled}, with the shortcut
// pending → cancelled for jobs cancelled while still queued.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SeedResult summarizes one completed trial of a job.
type SeedResult struct {
	Seed            uint64         `json:"seed"`
	Rounds          int            `json:"rounds"`
	Converged       bool           `json:"converged"`
	FirstAllCorrect int            `json:"first_all_correct,omitempty"`
	CorrectOpinion  int            `json:"correct_opinion"`
	FinalCorrect    int            `json:"final_correct"`
	Faults          []FaultOutcome `json:"faults,omitempty"`
}

// FaultOutcome is the wire form of one applied fault's telemetry
// (noisypull.FaultRecord).
type FaultOutcome struct {
	Round       int    `json:"round"`
	Kind        string `json:"kind"`
	Index       int    `json:"index"`
	Affected    int    `json:"affected"`
	RecoveredAt int    `json:"recovered_at,omitempty"`
}

// Event is one line of a job's NDJSON progress stream.
//
//   - "round": a simulated round finished (Seed, Round, Correct).
//   - "fault": a scheduled fault was applied (Seed, Round, Kind, Affected).
//   - "seed":  a trial finished (Seed, Result).
//   - "status": the terminal line, carrying the final job status.
//
// Seq is the job's monotonic event number, assigned whether or not anyone is
// streaming (the counter is journaled and restored across daemon restarts,
// so numbering never depends on who was watching). A client that loses its
// stream reconnects with StreamFrom(lastSeq) and receives only events it has
// not seen. The synthesized terminal "status" line carries no Seq.
type Event struct {
	Type     string      `json:"type"`
	Seq      uint64      `json:"seq,omitempty"`
	Seed     uint64      `json:"seed,omitempty"`
	Round    int         `json:"round,omitempty"`
	Correct  int         `json:"correct,omitempty"`
	Kind     string      `json:"kind,omitempty"`
	Affected int         `json:"affected,omitempty"`
	Result   *SeedResult `json:"result,omitempty"`
	Job      *JobStatus  `json:"job,omitempty"`
}

// JobStatus is the API representation of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID             string       `json:"id"`
	State          State        `json:"state"`
	Spec           JobSpec      `json:"spec"`
	Created        time.Time    `json:"created"`
	Started        *time.Time   `json:"started,omitempty"`
	Finished       *time.Time   `json:"finished,omitempty"`
	Error          string       `json:"error,omitempty"`
	Results        []SeedResult `json:"results,omitempty"`
	CompletedSeeds int          `json:"completed_seeds"`
	TotalSeeds     int          `json:"total_seeds"`
}

// subscriberBuffer is the per-stream event buffer. Round events beyond a
// slow consumer's buffer are dropped (progress streams are lossy by design);
// the terminal status line is never dropped because it is synthesized by the
// handler after the channel closes.
const subscriberBuffer = 1024

// job is the service's internal mutable record of one submission.
type job struct {
	id    string
	spec  JobSpec
	shape shapeKey
	cfg   noisypull.Config // built at submission; Seed filled per trial

	ctx    context.Context
	cancel context.CancelFunc

	nsubs atomic.Int32  // fast path: skip the mutex when nobody streams
	seq   atomic.Uint64 // monotonic event number; journaled, restored on recovery

	// watchdog is set when the per-job wall-clock limit fired: the context
	// cancellation then finalizes as failed, not cancelled.
	watchdog atomic.Bool

	// resume, when set by journal recovery, is the engine checkpoint the
	// job's next trial restores instead of starting from round zero. The
	// scheduler consumes it once.
	resume *checkpointState

	// fleetBanked/fleetLeases, when set by journal recovery, carry the
	// lease-journal state (delivered-but-unreleased results, in-flight
	// leases) into the job's first re-dispatch. Consumed once, like resume;
	// meaningless without a Dispatcher.
	fleetBanked []SeedResult
	fleetLeases []RecoveredLease

	mu       sync.Mutex
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	errMsg   string
	results  []SeedResult
	subs     map[chan Event]struct{}
	expiry   time.Time // TTL eviction deadline once terminal
}

// status snapshots the job for the API.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:             j.id,
		State:          j.state,
		Spec:           j.spec,
		Created:        j.created,
		Error:          j.errMsg,
		CompletedSeeds: len(j.results),
		TotalSeeds:     len(j.spec.Seeds),
	}
	if len(j.results) > 0 {
		st.Results = append([]SeedResult(nil), j.results...)
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// subscribe registers a progress stream. The returned channel is closed when
// the job reaches a terminal state (immediately, if it already has); the
// returned func unsubscribes.
func (j *job) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, subscriberBuffer)
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	j.nsubs.Add(1)
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			j.nsubs.Add(-1)
		}
		j.mu.Unlock()
	}
}

// publish assigns the event its sequence number and fans it out to all
// subscribers, dropping it for any whose buffer is full. The seq counter
// advances even with zero subscribers — sequence numbers must be a property
// of the job's execution, not of who happened to be streaming, or resuming a
// stream across a daemon restart could not line up. The nsubs fast path
// keeps the per-round cost of an unobserved job to one increment and one
// atomic load. It returns the assigned seq (journal records carry it).
func (j *job) publish(ev Event) uint64 {
	seq := j.seq.Add(1)
	if j.nsubs.Load() == 0 {
		return seq
	}
	ev.Seq = seq
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
	return seq
}

// finish moves the job to a terminal state, stamps the eviction deadline,
// and closes every subscriber channel.
func (j *job) finish(state State, errMsg string, ttl time.Duration) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.expiry = j.finished.Add(ttl)
	subs := j.subs
	j.subs = nil
	j.nsubs.Store(0)
	j.mu.Unlock()
	j.cancel() // release the context's timer/child resources
	for ch := range subs {
		close(ch)
	}
}
