package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements the service's write-ahead job journal: an append-only
// NDJSON file that records every submission, state transition, per-seed
// result, engine checkpoint, and terminal outcome. On startup the service
// replays it, reinstalling terminal jobs into the result store and
// re-enqueueing non-terminal ones (resuming from their last checkpoint when
// one was recorded), so a kill -9 loses at most the tail of the round in
// flight.
//
// Durability contract: every record is flushed to the OS when appended (a
// crash loses at most the final, possibly torn line — replay tolerates
// that), and terminal records are additionally fsynced, so an acknowledged
// job outcome survives power loss. Records for unknown jobs or with unknown
// types are skipped on replay, keeping old daemons forward-compatible with
// journals written by newer ones.

// journalFile is the journal's name inside Config.JournalDir.
const journalFile = "simd-journal.ndjson"

// Journal record types (journalRecord.T).
const (
	recSubmit     = "submit"
	recState      = "state"
	recSeed       = "seed"
	recCheckpoint = "checkpoint"
	recTerminal   = "terminal"
	recLease      = "lease"
)

// journalRecord is one NDJSON line. Which fields are set depends on T:
// submit carries Spec; state carries State; seed carries Seed/Result/Seq;
// checkpoint carries Seed/Round/Data/Seq (Data is the engine snapshot,
// base64 on the wire); terminal carries State and Error; lease carries
// Op/Lease/Node/Seeds/Attempt and, for result ops, Results.
type journalRecord struct {
	T      string      `json:"t"`
	Job    string      `json:"job,omitempty"`
	Spec   *JobSpec    `json:"spec,omitempty"`
	State  State       `json:"state,omitempty"`
	Error  string      `json:"error,omitempty"`
	Seed   *uint64     `json:"seed,omitempty"`
	Result *SeedResult `json:"result,omitempty"`
	Seq    uint64      `json:"seq,omitempty"`
	Round  int         `json:"round,omitempty"`
	Data   []byte      `json:"data,omitempty"`

	// Fleet lease-lifecycle fields (T == recLease).
	Op      LeaseOp      `json:"op,omitempty"`
	Lease   string       `json:"lease,omitempty"`
	Node    string       `json:"node,omitempty"`
	Seeds   []uint64     `json:"seeds,omitempty"`
	Attempt int          `json:"attempt,omitempty"`
	Results []SeedResult `json:"results,omitempty"`
	// Quorum is the agreeing-votes requirement a grant was cut under
	// (omitted for unverified, need-1 leases).
	Quorum int `json:"quorum,omitempty"`
}

// LeaseOp names one fleet lease-lifecycle event in the journal.
type LeaseOp string

const (
	// LeaseGrant: the lease went active on a node (or was adopted after a
	// restart). Re-grants of a requeued lease overwrite the earlier grant.
	LeaseGrant LeaseOp = "grant"
	// LeaseRenew: a heartbeat extended the lease (journaled at most once
	// per TTL, so a healthy fleet doesn't swamp the journal).
	LeaseRenew LeaseOp = "renew"
	// LeaseResult: the node delivered the lease's results; Results carries
	// the fresh (not-yet-merged) ones. Those seeds are banked — a restarted
	// coordinator must never recompute them even though they are not yet
	// part of the released prefix.
	LeaseResult LeaseOp = "result"
	// LeaseRequeue: the lease expired or its node died; it went back to
	// pending with a bumped attempt count.
	LeaseRequeue LeaseOp = "requeue"
	// LeaseAbandon: the lease hit its attempt cap and failed the job.
	LeaseAbandon LeaseOp = "abandon"
	// LeaseQuarantine: a node was quarantined (attestation failures or
	// quorum disagreement). Not tied to a job or lease — Node and Reason
	// (journaled in Error) are the payload — so quarantine survives a
	// coordinator restart: a lying node does not get a second chance just
	// because the coordinator rebooted.
	LeaseQuarantine LeaseOp = "quarantine"
	// LeaseAbsolve: a quarantined node finished probation and may take
	// leases again.
	LeaseAbsolve LeaseOp = "absolve"
)

// LeaseRecord is one lease-lifecycle event as handed to AppendLease by the
// fleet coordinator.
type LeaseRecord struct {
	Op      LeaseOp
	Job     string
	Lease   string
	Node    string
	Seeds   []uint64
	Attempt int
	Results []SeedResult
	// Quorum is the grant's agreeing-votes requirement (0/1 = unverified).
	Quorum int
	// Reason annotates quarantine records (journaled in the Error field).
	Reason string
}

// RecoveredLease is an in-flight lease reconstructed by journal replay,
// handed back to the dispatcher (DispatchJob.Leases) so a restarted
// coordinator re-adopts it — same id, owner, and attempt count — instead
// of re-dispatching the range from scratch.
type RecoveredLease struct {
	ID      string
	Node    string // "" = was pending at the crash
	Seeds   []uint64
	Attempt int
	Quorum  int // agreeing-votes requirement the grant was cut under (0/1 = none)
}

// journal is the append side. A nil *journal is a valid no-op (the service
// without -journal-dir), so call sites never branch. Write errors are
// sticky: the first failure disables further appends and is logged once —
// the daemon keeps serving, degraded to in-memory-only, rather than failing
// jobs over a full disk.
type journal struct {
	path  string
	logf  func(format string, args ...any)
	onErr func()

	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	err error
}

// openJournal creates dir if needed and opens the journal for appending.
func openJournal(dir string, logf func(string, ...any), onErr func()) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	return &journal{path: path, logf: logf, onErr: onErr, f: f, w: bufio.NewWriter(f)}, nil
}

// append marshals rec, writes it as one line, and flushes it to the OS.
// sync additionally fsyncs (terminal records: an acknowledged outcome must
// survive power loss, not just a process kill).
func (jl *journal) append(rec *journalRecord, sync bool) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err == nil {
		data = append(data, '\n')
		_, err = jl.w.Write(data)
	}
	if err == nil {
		err = jl.w.Flush()
	}
	if err == nil && sync {
		err = jl.f.Sync()
	}
	if err != nil {
		jl.err = err
		if jl.onErr != nil {
			jl.onErr()
		}
		if jl.logf != nil {
			jl.logf("journal: write failed, durability disabled: %v", err)
		}
	}
}

func (jl *journal) appendSubmit(id string, spec *JobSpec) {
	jl.append(&journalRecord{T: recSubmit, Job: id, Spec: spec}, false)
}

func (jl *journal) appendState(id string, state State) {
	jl.append(&journalRecord{T: recState, Job: id, State: state}, false)
}

func (jl *journal) appendSeed(id string, seed uint64, res *SeedResult, seq uint64) {
	jl.append(&journalRecord{T: recSeed, Job: id, Seed: &seed, Result: res, Seq: seq}, false)
}

func (jl *journal) appendCheckpoint(id string, seed uint64, round int, data []byte, seq uint64) {
	jl.append(&journalRecord{T: recCheckpoint, Job: id, Seed: &seed, Round: round, Data: data, Seq: seq}, false)
}

func (jl *journal) appendTerminal(id string, state State, errMsg string) {
	jl.append(&journalRecord{T: recTerminal, Job: id, State: state, Error: errMsg}, true)
}

func (jl *journal) appendLease(rec *LeaseRecord) {
	jl.append(&journalRecord{
		T: recLease, Job: rec.Job, Op: rec.Op, Lease: rec.Lease,
		Node: rec.Node, Seeds: rec.Seeds, Attempt: rec.Attempt,
		Results: rec.Results, Quorum: rec.Quorum, Error: rec.Reason,
	}, false)
}

func (jl *journal) close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.err == nil {
		jl.err = fmt.Errorf("service: journal closed")
		_ = jl.w.Flush()
		_ = jl.f.Sync()
	}
	_ = jl.f.Close()
}

// checkpointState is a recovered job's last journaled engine checkpoint.
type checkpointState struct {
	seed  uint64
	round int
	data  []byte
	seq   uint64
}

// recoveredJob accumulates one job's journal records during replay.
type recoveredJob struct {
	id       string
	spec     JobSpec
	terminal State // "" while non-terminal
	errMsg   string
	results  []SeedResult
	seen     map[uint64]bool // seeds with a journaled result
	ck       *checkpointState
	seq      uint64 // max event seq journaled; resumed publishing continues past it

	// Fleet lease state (recLease records): leases still in flight at the
	// crash, in grant order, plus results delivered but not yet part of the
	// released prefix ("banked" — they must never recompute).
	leaseOrder []string
	leases     map[string]*RecoveredLease
	banked     map[uint64]SeedResult
	bankOrder  []uint64
}

// replayOutcome is what replayJournal hands the service's recovery pass.
type replayOutcome struct {
	records int
	torn    bool
	jobs    []*recoveredJob // journal (submission) order
	maxID   uint64
	// quarantined maps node id → reason for nodes whose quarantine record
	// has no later absolve — fleet-level state, not tied to any job.
	quarantined map[string]string
}

// ReplaySummary reports a journal replay to /readyz and the startup log.
type ReplaySummary struct {
	// Records is the number of journal records replayed.
	Records int `json:"records"`
	// TornTail reports that the final line was incomplete (the write the
	// crash interrupted) and was discarded.
	TornTail bool `json:"torn_tail,omitempty"`
	// Jobs is the number of distinct jobs in the journal.
	Jobs int `json:"jobs"`
	// Restored is how many terminal jobs were reinstalled into the store.
	Restored int `json:"restored"`
	// Resumed is how many interrupted jobs were re-enqueued (from their last
	// checkpoint when one was journaled, from scratch otherwise).
	Resumed int `json:"resumed"`
	// Lost is how many interrupted jobs could not be resumed and were marked
	// failed ("lost to crash: ...").
	Lost int `json:"lost"`
	// DurationMS is the wall-clock replay time in milliseconds.
	DurationMS int64 `json:"duration_ms"`
}

func (rs ReplaySummary) String() string {
	torn := ""
	if rs.TornTail {
		torn = ", torn tail discarded"
	}
	return fmt.Sprintf("%d records, %d jobs (%d restored, %d resumed, %d lost) in %dms%s",
		rs.Records, rs.Jobs, rs.Restored, rs.Resumed, rs.Lost, rs.DurationMS, torn)
}

// replayJournal reads the journal at path and reconstructs per-job state.
// A missing file is an empty journal. Replay stops at the first unparsable
// line: anything beyond a torn write is unaccounted for, and the append side
// guarantees records are whole lines, so a parse failure can only be the
// crash-interrupted tail (or external corruption, which the same policy
// contains). Replay never fails on file content — only I/O errors surface.
func replayJournal(path string) (*replayOutcome, error) {
	out := &replayOutcome{}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, err
	}
	defer f.Close()

	byID := make(map[string]*recoveredJob)
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			var rec journalRecord
			if jsonErr := json.Unmarshal(line, &rec); jsonErr != nil {
				out.torn = true
				return out, nil
			}
			out.records++
			applyRecord(byID, out, &rec)
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// applyRecord folds one journal record into the replay state. Records for
// unknown jobs or of unknown types are skipped (forward compatibility).
func applyRecord(byID map[string]*recoveredJob, out *replayOutcome, rec *journalRecord) {
	if rec.T == recSubmit {
		if rec.Spec == nil || rec.Job == "" || byID[rec.Job] != nil {
			return
		}
		j := &recoveredJob{id: rec.Job, spec: *rec.Spec, seen: make(map[uint64]bool)}
		byID[rec.Job] = j
		out.jobs = append(out.jobs, j)
		if id := parseJobID(rec.Job); id > out.maxID {
			out.maxID = id
		}
		return
	}
	// Fleet-level quarantine records carry no job id: handle them before
	// the job lookup would drop them.
	if rec.T == recLease && (rec.Op == LeaseQuarantine || rec.Op == LeaseAbsolve) {
		if rec.Node == "" {
			return
		}
		if rec.Op == LeaseQuarantine {
			if out.quarantined == nil {
				out.quarantined = make(map[string]string)
			}
			out.quarantined[rec.Node] = rec.Error
		} else {
			delete(out.quarantined, rec.Node)
		}
		return
	}
	j := byID[rec.Job]
	if j == nil {
		return
	}
	switch rec.T {
	case recState:
		// Transitions only matter for logging today; the pending/running
		// distinction is irrelevant to recovery (both re-enqueue).
	case recSeed:
		if rec.Seed == nil || rec.Result == nil || j.seen[*rec.Seed] {
			return
		}
		j.seen[*rec.Seed] = true
		j.results = append(j.results, *rec.Result)
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		if j.ck != nil && j.ck.seed == *rec.Seed {
			j.ck = nil // the checkpointed seed finished; the checkpoint is stale
		}
	case recCheckpoint:
		if rec.Seed == nil || len(rec.Data) == 0 || j.seen[*rec.Seed] {
			return
		}
		j.ck = &checkpointState{seed: *rec.Seed, round: rec.Round, data: rec.Data, seq: rec.Seq}
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
	case recTerminal:
		if rec.State.Terminal() {
			j.terminal = rec.State
			j.errMsg = rec.Error
			j.ck = nil
		}
	case recLease:
		applyLease(j, rec)
	}
}

// bankResult records a delivered-but-unreleased seed result. Released
// seeds (recSeed) and earlier bankings win.
func (j *recoveredJob) bankResult(res SeedResult) {
	if j.seen[res.Seed] {
		return // already in the released prefix; recSeed is authoritative
	}
	if _, dup := j.banked[res.Seed]; dup {
		return
	}
	if j.banked == nil {
		j.banked = make(map[uint64]SeedResult)
	}
	j.banked[res.Seed] = res
	j.bankOrder = append(j.bankOrder, res.Seed)
}

// applyLease folds one lease-lifecycle record into the replay state.
func applyLease(j *recoveredJob, rec *journalRecord) {
	if rec.Lease == "" {
		return
	}
	switch rec.Op {
	case LeaseGrant:
		if len(rec.Seeds) == 0 {
			return
		}
		if j.leases == nil {
			j.leases = make(map[string]*RecoveredLease)
		}
		if _, known := j.leases[rec.Lease]; !known {
			j.leaseOrder = append(j.leaseOrder, rec.Lease)
		}
		j.leases[rec.Lease] = &RecoveredLease{
			ID: rec.Lease, Node: rec.Node,
			Seeds: append([]uint64(nil), rec.Seeds...), Attempt: rec.Attempt,
			Quorum: rec.Quorum,
		}
	case LeaseRenew:
		if l := j.leases[rec.Lease]; l != nil && rec.Node != "" {
			l.Node = rec.Node
		}
	case LeaseRequeue:
		if l := j.leases[rec.Lease]; l != nil {
			l.Node = ""
			if rec.Attempt > l.Attempt {
				l.Attempt = rec.Attempt
			}
		}
	case LeaseResult:
		delete(j.leases, rec.Lease)
		for _, res := range rec.Results {
			j.bankResult(res)
		}
	case LeaseAbandon:
		delete(j.leases, rec.Lease)
	}
}

// fleetState distills the replayed lease records into what a re-dispatch
// needs: banked results (delivered but unreleased — never recompute) and
// the leases in flight at the crash. Both are filtered defensively so a
// torn, reordered, or fuzzed journal can never yield overlapping or
// out-of-job work: banked seeds must belong to the spec and not be in the
// released prefix; a lease survives only if every one of its seeds is
// still unclaimed. These invariants are what FuzzLeaseJournalReplay pins.
func (rj *recoveredJob) fleetState() (banked []SeedResult, leases []RecoveredLease) {
	if len(rj.banked) == 0 && len(rj.leases) == 0 {
		return nil, nil
	}
	inJob := make(map[uint64]bool, len(rj.spec.Seeds))
	for _, s := range rj.spec.Seeds {
		inJob[s] = true
	}
	claimed := make(map[uint64]bool)
	for _, s := range rj.bankOrder {
		if !inJob[s] || rj.seen[s] || claimed[s] {
			continue
		}
		claimed[s] = true
		banked = append(banked, rj.banked[s])
	}
	for _, id := range rj.leaseOrder {
		l := rj.leases[id]
		if l == nil {
			continue // resulted or abandoned
		}
		ok := len(l.Seeds) > 0
		within := make(map[uint64]bool, len(l.Seeds))
		for _, s := range l.Seeds {
			if !inJob[s] || rj.seen[s] || claimed[s] || within[s] {
				ok = false
				break
			}
			within[s] = true
		}
		if !ok {
			continue
		}
		for _, s := range l.Seeds {
			claimed[s] = true
		}
		leases = append(leases, *l)
	}
	return banked, leases
}

// parseJobID extracts the numeric part of a "j-000123" id (0 if foreign).
func parseJobID(id string) uint64 {
	s, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// recover replays the journal and rebuilds service state: terminal jobs go
// back into the result store, interrupted jobs are re-enqueued (with their
// completed seeds and last checkpoint), and jobs that cannot be rebuilt are
// finalized as failed with a "lost to crash" reason. It runs once, in the
// background, before the service reports ready; submissions meanwhile get
// ErrNotReady.
func (s *Service) recover() {
	start := time.Now()
	outcome, err := replayJournal(s.journal.path)
	if err != nil {
		// Unreadable journal: surface loudly but come up empty rather than
		// refusing to serve (the file stays on disk for forensics).
		s.logf("journal: replay failed, starting empty: %v", err)
		outcome = &replayOutcome{}
	}

	summary := ReplaySummary{
		Records:  outcome.records,
		TornTail: outcome.torn,
		Jobs:     len(outcome.jobs),
	}
	now := time.Now()
	for _, rj := range outcome.jobs {
		switch {
		case rj.terminal != "":
			s.installTerminal(rj, now)
			summary.Restored++
		default:
			if s.resubmit(rj) {
				summary.Resumed++
				s.metrics.recovered.Add(1)
			} else {
				summary.Lost++
			}
		}
	}

	s.mu.Lock()
	if outcome.maxID > s.nextID {
		s.nextID = outcome.maxID
	}
	s.mu.Unlock()

	summary.DurationMS = time.Since(start).Milliseconds()
	s.metrics.replayMS.Store(summary.DurationMS)
	s.replayMu.Lock()
	s.replay = summary
	s.replayDone = true
	s.fleetQuarantine = outcome.quarantined
	s.replayMu.Unlock()
	s.ready.Store(true)
	s.logf("journal: replay done: %s", summary.String())
}

// installTerminal puts a finished job straight into the result store, with a
// fresh TTL (its original finish time did not survive the restart).
func (s *Service) installTerminal(rj *recoveredJob, now time.Time) {
	j := &job{
		id:       rj.id,
		spec:     rj.spec,
		state:    rj.terminal,
		errMsg:   rj.errMsg,
		results:  rj.results,
		created:  now,
		finished: now,
		expiry:   now.Add(s.cfg.ResultTTL),
	}
	j.ctx, j.cancel = context.WithCancel(s.rootCtx)
	j.cancel() // terminal: nothing will ever run under this context
	s.mu.Lock()
	if _, exists := s.jobs[j.id]; !exists {
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	s.mu.Unlock()
}

// resubmit re-enqueues an interrupted job, reporting whether it is live
// again. Failure paths (spec no longer builds, queue overflow, drain racing
// recovery) finalize the job as failed with a journaled "lost to crash"
// reason, so the loss is visible to clients instead of silent.
func (s *Service) resubmit(rj *recoveredJob) bool {
	spec := rj.spec
	spec.normalize()
	lost := func(reason string) {
		j := &job{id: rj.id, spec: spec, state: StateRunning, created: time.Now(), results: rj.results}
		j.ctx, j.cancel = context.WithCancel(s.rootCtx)
		s.mu.Lock()
		if _, exists := s.jobs[j.id]; !exists {
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
		}
		s.mu.Unlock()
		s.finalize(j, StateFailed, "lost to crash: "+reason)
		s.logf("job %s lost to crash: %s", rj.id, reason)
	}

	cfg, err := spec.build()
	if err != nil {
		lost(err.Error())
		return false
	}
	cfg.Workers = s.cfg.SimWorkers

	banked, leases := rj.fleetState()
	j := &job{
		id:          rj.id,
		spec:        spec,
		shape:       spec.shape(),
		cfg:         cfg,
		state:       StatePending,
		created:     time.Now(),
		results:     rj.results,
		resume:      rj.ck,
		fleetBanked: banked,
		fleetLeases: leases,
	}
	j.seq.Store(rj.seq)
	j.ctx, j.cancel = context.WithCancel(s.rootCtx)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lost("service shut down during recovery")
		return false
	}
	if _, exists := s.jobs[j.id]; exists {
		s.mu.Unlock()
		return false // duplicate submit record; first wins
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		lost(fmt.Sprintf("recovery overflowed the job queue (capacity %d)", s.cfg.QueueCapacity))
		return false
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	// Log from rj.ck, not j.resume: once the job is on the queue a worker may
	// already have consumed the resume pointer.
	switch {
	case rj.ck != nil:
		s.logf("job %s recovered: resuming seed %d from checkpoint at round %d (%d/%d seeds done)",
			j.id, rj.ck.seed, rj.ck.round, len(rj.results), len(spec.Seeds))
	case len(banked) > 0 || len(leases) > 0:
		s.logf("job %s recovered: re-enqueued (%d/%d seeds done, %d banked results, %d in-flight leases to adopt)",
			j.id, len(rj.results), len(spec.Seeds), len(banked), len(leases))
	default:
		s.logf("job %s recovered: re-enqueued (%d/%d seeds done)", j.id, len(rj.results), len(spec.Seeds))
	}
	return true
}
