package service

// FuzzJobSpecDecode hammers the submission path's data plane: any byte
// sequence a client can POST must either fail decoding/validation cleanly
// or build a runnable config — never panic. CI runs this briefly with
// -fuzz as a smoke test; the seed corpus alone runs under plain `go test`.

import (
	"encoding/json"
	"testing"
)

func FuzzJobSpecDecode(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"protocol":"sf","n":100,"h":4,"sources1":1,"delta":0.2}`,
		`{"protocol":"ssf","n":64,"h":8,"sources1":2,"delta":0.1,"seeds":[1,2,3]}`,
		`{"protocol":"majority","n":1000,"h":4,"sources1":10,"backend":"counts","max_rounds":50}`,
		`{"protocol":"sf","n":100,"h":4,"sources1":1,"p01":0.1,"p10":0.2}`,
		`{"protocol":"voter","n":100,"h":4,"sources1":1,"delta":0.2,` +
			`"faults":[{"kind":"corrupt","round":3,"fraction":0.5,"mode":"wrong"},` +
			`{"kind":"crash","window_lo":2,"window_hi":9,"fraction":1,"duration":4},` +
			`{"kind":"noise","round":5,"delta":0.3},` +
			`{"kind":"drift","round":7,"delta":0.2,"drift_rounds":3}]}`,
		`{"protocol":"sf","faults":[{"kind":"meteor"}]}`,
		`{"protocol":"sf","n":-5,"h":0,"delta":-3e308}`,
		`{"protocol":"trustbit","n":100,"h":4,"sources1":1,"delta":0.24,` +
			`"faults":[{"kind":"churn","round":1,"fraction":1e-9}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		spec.normalize()
		_ = spec.shape()
		cfg, err := spec.build()
		if err != nil {
			return
		}
		// A spec that builds must have produced a config the engine accepts.
		if err := cfg.Check(); err != nil {
			t.Fatalf("build succeeded but Check failed: %v\nspec: %s", err, data)
		}
	})
}
