package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal Go client for a simd daemon. The zero HTTPClient
// means http.DefaultClient.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds the retries (attempts beyond the first) of a
	// request that failed retryably: HTTP 429 backpressure for any method,
	// or a transient network error for idempotent methods. Negative
	// disables retries; 0 means the default 3.
	MaxRetries int
	// RetryBaseDelay is the first backoff step; it doubles per retry (with
	// jitter) up to retryMaxDelay, and a 429's Retry-After header overrides
	// it. 0 means the default 100ms.
	RetryBaseDelay time.Duration
	// Sign, when set, is called with every outgoing request and its body
	// (nil for body-less requests) before the request is sent — the hook by
	// which subsystems stamp authentication headers (the fleet wire's
	// shared-secret HMAC rides on it).
	Sign func(req *http.Request, body []byte)
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) hc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes an error envelope into a sentinel-wrapping error so
// callers can errors.Is against ErrQueueFull / ErrDraining / ErrNotFound.
func apiError(status int, body []byte) error {
	var eb errorBody
	msg := string(bytes.TrimSpace(body))
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	switch status {
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w (%s)", ErrQueueFull, msg)
	case http.StatusServiceUnavailable:
		// 503 covers both shutdown (draining) and startup (journal replay);
		// the body tells them apart so callers can errors.Is the right one.
		if strings.Contains(msg, "not ready") || strings.Contains(msg, "replaying") {
			return fmt.Errorf("%w (%s)", ErrNotReady, msg)
		}
		return fmt.Errorf("%w (%s)", ErrDraining, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w (%s)", ErrNotFound, msg)
	default:
		return &HTTPError{Status: status, Msg: msg}
	}
}

// HTTPError is the client-side form of an API error that maps to no
// sentinel: validation failures and unrecognized statuses. Callers (the
// fleet worker's circuit breaker) use the status to tell "the server
// answered and rejected this request" from "the server is unreachable or
// unhealthy".
type HTTPError struct {
	Status int
	Msg    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Msg)
}

const retryMaxDelay = 5 * time.Second

func (c *Client) maxRetries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 3
	default:
		return c.MaxRetries
	}
}

// retryDelay computes the sleep before retry number attempt (0-based):
// exponential from RetryBaseDelay with full jitter, capped at
// retryMaxDelay; a server-provided Retry-After (seconds) takes precedence.
func (c *Client) retryDelay(attempt int, retryAfter string) time.Duration {
	if s, err := strconv.Atoi(retryAfter); err == nil && s >= 0 {
		return time.Duration(s) * time.Second
	}
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << attempt
	if d > retryMaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = retryMaxDelay
	}
	return time.Duration(rand.Int64N(int64(d)) + 1)
}

// Do issues one JSON API request against BaseURL+path with the client's
// retry/backoff policy: HTTP 429 is retried for every method, transient
// network errors only for GET/DELETE (a failed POST may have been applied).
// Exported for subsystems that extend the daemon's API surface — the fleet
// wire protocol rides on it.
func (c *Client) Do(ctx context.Context, method, path string, in, out any) error {
	return c.do(ctx, method, path, in, out)
}

// PostIdempotent issues a JSON POST whose transient network errors are
// retried like a GET's — for requests that are idempotent by construction.
// Every fleet RPC qualifies: registration and heartbeats are upserts, polls
// lease at-most-once server-side, and result merges deduplicate by seed, so
// duplicate delivery after a lost response is harmless.
func (c *Client) PostIdempotent(ctx context.Context, path string, in, out any) error {
	return c.doRetry(ctx, http.MethodPost, path, in, out, true)
}

// do issues one API request with retries. HTTP 429 (queue backpressure) is
// retried for every method — the request was read and rejected, so
// resubmitting is safe. Transient network errors are retried only for
// idempotent methods (GET, DELETE): a failed POST may have been applied.
// Backoff sleeps honor ctx.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, method, path, in, out, method == http.MethodGet || method == http.MethodDelete)
}

func (c *Client) doRetry(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		err, retryable, retryAfter := c.attempt(ctx, method, path, data, out)
		if err == nil || !retryable || attempt >= c.maxRetries() {
			return err
		}
		if !idempotent && !errors.Is(err, ErrQueueFull) {
			return err
		}
		timer := time.NewTimer(c.retryDelay(attempt, retryAfter))
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// attempt is one request/response cycle of do. retryable marks errors that
// a retry could plausibly cure (429, network failure); retryAfter carries
// the server's Retry-After header, if any.
func (c *Client) attempt(ctx context.Context, method, path string, data []byte, out any) (err error, retryable bool, retryAfter string) {
	var body io.Reader
	if data != nil {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err, false, ""
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Sign != nil {
		c.Sign(req, data)
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		// Context expiry is terminal; anything else (refused connection,
		// reset, timeout at the transport) is a transient network error.
		if ctx.Err() != nil {
			return ctx.Err(), false, ""
		}
		return err, true, ""
	}
	defer resp.Body.Close()
	respData, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err, false, ""
	}
	if resp.StatusCode >= 400 {
		return apiError(resp.StatusCode, respData),
			resp.StatusCode == http.StatusTooManyRequests,
			resp.Header.Get("Retry-After")
	}
	if out != nil {
		return json.Unmarshal(respData, out), false, ""
	}
	return nil, false, ""
}

// Submit posts a job and returns its pending status. A full queue surfaces
// as an error matching ErrQueueFull; a draining daemon as ErrDraining.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's status and results.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists all stored jobs.
func (c *Client) Jobs(ctx context.Context) ([]*JobStatus, error) {
	var sts []*JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &sts); err != nil {
		return nil, err
	}
	return sts, nil
}

// Cancel requests cancellation and returns the (possibly already terminal)
// status.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stream consumes a job's NDJSON progress stream, invoking fn for every
// event until the terminal status line, which it returns. fn returning a
// non-nil error aborts the stream with that error. fn may be nil to just
// wait for completion.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) (*JobStatus, error) {
	return c.StreamFrom(ctx, id, 0, fn)
}

// StreamFrom is Stream resuming after a disconnect: events with seq ≤ from
// are suppressed server-side, so passing the last Seq the previous stream
// delivered yields no duplicates. Sequence numbers are journaled with the
// job, so resuming works across a daemon restart — a recovered job continues
// the numbering where the crashed process left it.
func (c *Client) StreamFrom(ctx context.Context, id string, from uint64, fn func(Event) error) (*JobStatus, error) {
	url := c.BaseURL + "/v1/jobs/" + id + "/stream"
	if from > 0 {
		url += "?from=" + strconv.FormatUint(from, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, apiError(resp.StatusCode, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("service: bad stream line: %w", err)
		}
		if ev.Type == "status" {
			return ev.Job, nil
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, errors.New("service: stream ended without a terminal status line")
}

// Ready queries /readyz: whether the daemon accepts submissions, plus the
// journal replay summary once recovery has finished (nil before that, and
// on pre-durability daemons). A connection error is returned as-is, so
// callers can poll Ready through a restart.
func (c *Client) Ready(ctx context.Context) (bool, *ReplaySummary, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return false, nil, err
	}
	var body readyBody
	_ = json.Unmarshal(data, &body) // tolerate non-JSON bodies from old daemons
	return resp.StatusCode == http.StatusOK, body.Replay, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}
