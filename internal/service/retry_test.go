package service

// Client retry tests against deliberately flaky servers and transports.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyTransport fails the first n round-trips with a network error, then
// delegates to the real transport.
type flakyTransport struct {
	failures atomic.Int32
	attempts atomic.Int32
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := f.attempts.Add(1)
	if n <= f.failures.Load() {
		return nil, fmt.Errorf("connection reset by flaky transport (attempt %d)", n)
	}
	return http.DefaultTransport.RoundTrip(req)
}

func fastRetryClient(baseURL string, tr http.RoundTripper) *Client {
	c := NewClient(baseURL)
	c.RetryBaseDelay = time.Millisecond
	if tr != nil {
		c.HTTPClient = &http.Client{Transport: tr}
	}
	return c
}

func TestClientRetries429HonoringRetryAfter(t *testing.T) {
	var posts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n := posts.Add(1); n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"id":"j-000001","state":"pending"}`)
	}))
	defer srv.Close()

	c := fastRetryClient(srv.URL, nil)
	start := time.Now()
	st, err := c.Submit(context.Background(), quickSpec(1))
	if err != nil {
		t.Fatalf("submit after 429s: %v", err)
	}
	if st.ID != "j-000001" {
		t.Fatalf("status = %+v", st)
	}
	if got := posts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	// Retry-After: 0 overrides the backoff, so the whole exchange is quick.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retries took %v; Retry-After 0 was not honored", elapsed)
	}
}

func TestClientRetryGivesUpAfterMaxRetries(t *testing.T) {
	var posts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := fastRetryClient(srv.URL, nil)
	c.MaxRetries = 2
	_, err := c.Submit(context.Background(), quickSpec(1))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := posts.Load(); got != 3 { // initial + 2 retries
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestClientRetriesTransientNetworkErrorOnGet(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[]`)
	}))
	defer srv.Close()

	tr := &flakyTransport{}
	tr.failures.Store(2)
	c := fastRetryClient(srv.URL, tr)
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("GET after transient failures: %v", err)
	}
	if got := tr.attempts.Load(); got != 3 {
		t.Fatalf("transport saw %d attempts, want 3", got)
	}
}

func TestClientDoesNotRetryPostOnNetworkError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{}`)
	}))
	defer srv.Close()

	tr := &flakyTransport{}
	tr.failures.Store(1)
	c := fastRetryClient(srv.URL, tr)
	if _, err := c.Submit(context.Background(), quickSpec(1)); err == nil {
		t.Fatal("POST retried a network error; a submit may not be idempotent")
	}
	if got := tr.attempts.Load(); got != 1 {
		t.Fatalf("transport saw %d attempts, want 1", got)
	}
}

func TestClientRetryBackoffIsContextCancellable(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		// No Retry-After: the client falls back to exponential backoff.
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.RetryBaseDelay = time.Hour // force the cancellation path
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Jobs(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the backoff sleep ignored ctx", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts before cancellation, want 1", got)
	}
}
