package service

// Tests for the lease-lifecycle journal records (recLease): replay
// reconstruction of banked results and in-flight leases, torn-tail tolerance
// at every byte offset, and a fuzz target pinning the fleetState invariants
// (banked ∩ released = ∅, lease seed sets pairwise disjoint and in-job).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func leaseRec(op LeaseOp, job, lease, node string, seeds []uint64, attempt int, results []SeedResult) *LeaseRecord {
	return &LeaseRecord{Op: op, Job: job, Lease: lease, Node: node, Seeds: seeds, Attempt: attempt, Results: results}
}

func TestLeaseJournalRoundTrip(t *testing.T) {
	spec := quickSpec(1, 2, 3, 4, 5, 6, 7, 8)
	path, _ := buildJournal(t, t.TempDir(), func(jl *journal) {
		jl.appendSubmit("j-000001", &spec)
		// l-...-000 delivers: its seeds bank, the lease dies.
		jl.appendLease(leaseRec(LeaseGrant, "j-000001", "l-j-000001-000", "wa", []uint64{3, 4}, 0, nil))
		jl.appendLease(leaseRec(LeaseResult, "j-000001", "l-j-000001-000", "wa", []uint64{3, 4}, 0,
			[]SeedResult{{Seed: 3, Rounds: 30}, {Seed: 4, Rounds: 40}}))
		// l-...-001 stays active on wb (renewed, node updated).
		jl.appendLease(leaseRec(LeaseGrant, "j-000001", "l-j-000001-001", "wa", []uint64{5, 6}, 0, nil))
		jl.appendLease(leaseRec(LeaseRenew, "j-000001", "l-j-000001-001", "wb", nil, 0, nil))
		// l-...-002 was requeued: ownerless, attempt bumped.
		jl.appendLease(leaseRec(LeaseGrant, "j-000001", "l-j-000001-002", "wc", []uint64{7, 8}, 0, nil))
		jl.appendLease(leaseRec(LeaseRequeue, "j-000001", "l-j-000001-002", "", []uint64{7, 8}, 1, nil))
		// l-...-003 hit the attempt cap and is gone.
		jl.appendLease(leaseRec(LeaseGrant, "j-000001", "l-j-000001-003", "wd", []uint64{1}, 4, nil))
		jl.appendLease(leaseRec(LeaseAbandon, "j-000001", "l-j-000001-003", "wd", []uint64{1}, 4, nil))
	})
	out, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.jobs) != 1 {
		t.Fatalf("replayed %d jobs", len(out.jobs))
	}
	banked, leases := out.jobs[0].fleetState()

	if len(banked) != 2 || banked[0].Seed != 3 || banked[1].Seed != 4 {
		t.Fatalf("banked = %+v, want seeds [3 4]", banked)
	}
	if banked[0].Rounds != 30 || banked[1].Rounds != 40 {
		t.Fatalf("banked payload lost: %+v", banked)
	}
	if len(leases) != 2 {
		t.Fatalf("leases = %+v, want 2", leases)
	}
	if l := leases[0]; l.ID != "l-j-000001-001" || l.Node != "wb" || l.Attempt != 0 {
		t.Fatalf("active lease = %+v", l)
	}
	if l := leases[1]; l.ID != "l-j-000001-002" || l.Node != "" || l.Attempt != 1 {
		t.Fatalf("requeued lease = %+v", l)
	}
}

func TestLeaseJournalReleasedPrefixWinsOverBank(t *testing.T) {
	spec := quickSpec(1, 2)
	path, _ := buildJournal(t, t.TempDir(), func(jl *journal) {
		jl.appendSubmit("j-000001", &spec)
		jl.appendLease(leaseRec(LeaseGrant, "j-000001", "l-j-000001-000", "wa", []uint64{1, 2}, 0, nil))
		jl.appendLease(leaseRec(LeaseResult, "j-000001", "l-j-000001-000", "wa", []uint64{1, 2}, 0,
			[]SeedResult{{Seed: 1, Rounds: 10}, {Seed: 2, Rounds: 20}}))
		// Seed 1 then made it into the released prefix before the crash: the
		// recSeed record is authoritative and the bank must drop it.
		jl.appendSeed("j-000001", 1, &SeedResult{Seed: 1, Rounds: 10}, 1)
	})
	out, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	banked, leases := out.jobs[0].fleetState()
	if len(banked) != 1 || banked[0].Seed != 2 {
		t.Fatalf("banked = %+v, want just seed 2", banked)
	}
	if len(leases) != 0 {
		t.Fatalf("leases = %+v, want none", leases)
	}
}

// TestLeaseJournalQuarantineRoundTrip pins the job-less quarantine records:
// replay must surface quarantined nodes (with their reasons) minus any later
// absolve, so a lying node stays benched across a coordinator restart.
func TestLeaseJournalQuarantineRoundTrip(t *testing.T) {
	spec := quickSpec(1, 2)
	path, _ := buildJournal(t, t.TempDir(), func(jl *journal) {
		jl.appendSubmit("j-000001", &spec)
		jl.appendLease(&LeaseRecord{Op: LeaseQuarantine, Node: "wl", Reason: "first offense"})
		jl.appendLease(&LeaseRecord{Op: LeaseQuarantine, Node: "wx", Reason: "outvoted"})
		jl.appendLease(&LeaseRecord{Op: LeaseAbsolve, Node: "wx"})
		// Re-quarantine after an absolve, with a fresh reason: latest wins.
		jl.appendLease(&LeaseRecord{Op: LeaseQuarantine, Node: "wl", Reason: "second offense"})
		// Node-less records are malformed; replay must drop them, not panic.
		jl.appendLease(&LeaseRecord{Op: LeaseQuarantine})
		jl.appendLease(&LeaseRecord{Op: LeaseAbsolve})
	})
	out, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"wl": "second offense"}
	if len(out.quarantined) != 1 || out.quarantined["wl"] != want["wl"] {
		t.Fatalf("quarantined = %+v, want %+v", out.quarantined, want)
	}
	// The quarantine records are job-less by design: the recovered job's
	// fleet state must be untouched by them.
	banked, leases := out.jobs[0].fleetState()
	if len(banked) != 0 || len(leases) != 0 {
		t.Fatalf("quarantine records leaked into job state: banked=%v leases=%v", banked, leases)
	}
}

// checkFleetInvariants asserts the properties a re-dispatch relies on, for
// any journal content whatsoever.
func checkFleetInvariants(t *testing.T, rj *recoveredJob) {
	t.Helper()
	banked, leases := rj.fleetState()
	inJob := make(map[uint64]bool, len(rj.spec.Seeds))
	for _, s := range rj.spec.Seeds {
		inJob[s] = true
	}
	claimed := make(map[uint64]bool)
	for _, sr := range banked {
		if !inJob[sr.Seed] {
			t.Fatalf("banked seed %d not in job %v", sr.Seed, rj.spec.Seeds)
		}
		if rj.seen[sr.Seed] {
			t.Fatalf("banked seed %d already in the released prefix", sr.Seed)
		}
		if claimed[sr.Seed] {
			t.Fatalf("banked seed %d claimed twice", sr.Seed)
		}
		claimed[sr.Seed] = true
	}
	for _, l := range leases {
		if len(l.Seeds) == 0 {
			t.Fatalf("lease %s has no seeds", l.ID)
		}
		for _, s := range l.Seeds {
			if !inJob[s] {
				t.Fatalf("lease %s seed %d not in job", l.ID, s)
			}
			if rj.seen[s] {
				t.Fatalf("lease %s seed %d already released", l.ID, s)
			}
			if claimed[s] {
				t.Fatalf("lease %s seed %d claimed twice", l.ID, s)
			}
			claimed[s] = true
		}
	}
}

// leaseJournalBytes is the canonical lease journal the truncation and fuzz
// tests start from.
func leaseJournalBytes(t testing.TB) []byte {
	spec := quickSpec(1, 2, 3, 4, 5, 6)
	jl, err := openJournal(t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	jl.appendSubmit("j-000001", &spec)
	jl.appendLease(leaseRec(LeaseGrant, "j-000001", "l-j-000001-000", "wa", []uint64{1, 2}, 0, nil))
	jl.appendLease(leaseRec(LeaseGrant, "j-000001", "l-j-000001-001", "wb", []uint64{3, 4}, 0, nil))
	jl.appendLease(leaseRec(LeaseResult, "j-000001", "l-j-000001-000", "wa", []uint64{1, 2}, 0,
		[]SeedResult{{Seed: 1, Rounds: 11}, {Seed: 2, Rounds: 12}}))
	jl.appendSeed("j-000001", 1, &SeedResult{Seed: 1, Rounds: 11}, 1)
	jl.appendLease(leaseRec(LeaseRequeue, "j-000001", "l-j-000001-001", "", []uint64{3, 4}, 1, nil))
	jl.appendLease(leaseRec(LeaseGrant, "j-000001", "l-j-000001-002", "wc", []uint64{5, 6}, 0, nil))
	jl.close()
	data, err := os.ReadFile(jl.path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLeaseJournalTruncatedAtEveryOffset cuts a lease-bearing journal at
// every byte position: replay must never error, and whatever state survives
// must still satisfy the fleet invariants.
func TestLeaseJournalTruncatedAtEveryOffset(t *testing.T) {
	data := leaseJournalBytes(t)
	path := filepath.Join(t.TempDir(), journalFile)
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := replayJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		for _, rj := range out.jobs {
			checkFleetInvariants(t, rj)
		}
	}
}

// FuzzLeaseJournalReplay throws arbitrary bytes at replay and asserts the
// fleetState invariants hold for every recovered job — a mangled journal may
// lose work (recomputed; harmless) but must never yield overlapping or
// out-of-job leases, which would corrupt a dispatch.
func FuzzLeaseJournalReplay(f *testing.F) {
	valid := leaseJournalBytes(f)
	f.Add(valid)
	f.Add(valid[:2*len(valid)/3])
	f.Add(bytes.Replace(valid, []byte(`"op":"result"`), []byte(`"op":"grant"`), 1))
	f.Add(bytes.ReplaceAll(valid, []byte(`"seeds":[3,4]`), []byte(`"seeds":[1,2]`)))
	f.Add([]byte(`{"t":"submit","job":"j-1","spec":{"n":10,"h":1,"sources1":1,"seeds":[1]}}` + "\n" +
		`{"t":"lease","job":"j-1","op":"grant","lease":"l-j-1-000","seeds":[1,1,99]}` + "\n"))
	f.Add([]byte(`{"t":"lease","job":"j-none","op":"result","lease":"x","results":[{"seed":5}]}` + "\n"))
	f.Add([]byte(`{"t":"lease","op":"quarantine","node":"wl","error":"lied"}` + "\n" +
		`{"t":"lease","op":"absolve","node":"wl"}` + "\n" +
		`{"t":"lease","op":"quarantine"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), journalFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := replayJournal(path)
		if err != nil {
			t.Fatalf("replay errored on file content: %v", err)
		}
		for _, rj := range out.jobs {
			checkFleetInvariants(t, rj)
		}
	})
}
