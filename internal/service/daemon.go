package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// DaemonConfig configures a Daemon.
type DaemonConfig struct {
	// Addr is the listen address (default "127.0.0.1:8080"). Use ":0" for a
	// random port (tests); Addr() reports the bound address.
	Addr string
	// Service tunes the embedded job scheduler.
	Service Config
	// DrainTimeout bounds graceful shutdown: in-flight jobs get this long
	// to finish before they are cancelled. Default 30s.
	DrainTimeout time.Duration
	// Logf, if non-nil, receives daemon lifecycle lines (and is passed down
	// to the service when Service.Logf is unset).
	Logf func(format string, args ...any)
	// Routes, if non-nil, is called with the daemon's mux before serving so
	// embedders can mount additional endpoints (cmd/simd mounts the fleet
	// coordinator's wire protocol here in -coordinator mode).
	Routes func(mux *http.ServeMux)
	// Bind, if non-nil, is called with the opened Service after the journal
	// is attached but before the listener serves — the hook where cmd/simd
	// connects the fleet coordinator to the service's lease journal and
	// replay-readiness state.
	Bind func(svc *Service)
}

// Daemon binds a Service to an HTTP listener and owns the shutdown
// sequence: stop accepting jobs, drain or cancel in-flight work within the
// deadline, then close the HTTP server. cmd/simd wires it to SIGINT/SIGTERM
// via Run.
type Daemon struct {
	cfg      DaemonConfig
	svc      *Service
	srv      *http.Server
	ln       net.Listener
	serveErr chan error
	stopOnce sync.Once
	stopErr  error
}

// NewDaemon constructs a daemon (not yet listening).
func NewDaemon(cfg DaemonConfig) *Daemon {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:8080"
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.Service.Logf == nil {
		cfg.Service.Logf = cfg.Logf
	}
	return &Daemon{cfg: cfg, serveErr: make(chan error, 1)}
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Start binds the listener, starts the service workers, and serves HTTP in
// the background. It returns once the daemon is accepting requests; with a
// journal configured, job submissions additionally wait on the background
// replay (503 from POST /v1/jobs and /readyz until it finishes, while
// status, results, and metrics endpoints serve immediately).
func (d *Daemon) Start() error {
	svc, err := Open(d.cfg.Service)
	if err != nil {
		return err
	}
	if d.cfg.Bind != nil {
		d.cfg.Bind(svc)
	}
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		svc.Close()
		return err
	}
	d.ln = ln
	d.svc = svc
	mux := d.svc.Handler()
	if d.cfg.Routes != nil {
		d.cfg.Routes(mux)
	}
	d.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		d.serveErr <- d.srv.Serve(ln)
	}()
	d.logf("simd listening on %s (queue=%d workers=%d ttl=%s)",
		ln.Addr(), cap(d.svc.queue), d.svc.cfg.Workers, d.svc.cfg.ResultTTL)
	if d.cfg.Service.JournalDir != "" {
		d.logf("simd journal at %s (replaying; /readyz flips when done)", d.svc.journal.path)
	}
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (d *Daemon) Addr() string {
	if d.ln == nil {
		return d.cfg.Addr
	}
	return d.ln.Addr().String()
}

// BaseURL returns the http:// URL of the bound address.
func (d *Daemon) BaseURL() string { return "http://" + d.Addr() }

// Service exposes the embedded scheduler (tests and embedders).
func (d *Daemon) Service() *Service { return d.svc }

// Run starts the daemon (unless Start was already called) and blocks until
// ctx is cancelled (typically by a SIGINT/SIGTERM via signal.NotifyContext)
// or the HTTP server fails, then performs the graceful shutdown sequence and
// returns its outcome: nil on a clean drain, the drain error when the
// deadline forced cancellation.
func (d *Daemon) Run(ctx context.Context) error {
	if d.ln == nil {
		if err := d.Start(); err != nil {
			return err
		}
	}
	select {
	case <-ctx.Done():
		d.logf("simd: shutdown signal received, draining (deadline %s)", d.cfg.DrainTimeout)
		return d.Shutdown()
	case err := <-d.serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Shutdown executes the graceful stop: the service drains first (new
// submissions get 503; running jobs finish or are cancelled at the
// deadline), then the HTTP server closes once the remaining handlers —
// including progress streams, which end when their jobs finalize — have
// returned. Idempotent.
func (d *Daemon) Shutdown() error {
	d.stopOnce.Do(func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
		defer cancel()
		drainErr := d.svc.Drain(drainCtx)

		httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		shutErr := d.srv.Shutdown(httpCtx)
		if shutErr != nil {
			d.srv.Close()
		}
		if drainErr != nil {
			d.stopErr = drainErr
			d.logf("simd: drain deadline hit, in-flight jobs cancelled")
		} else {
			d.stopErr = shutErr
			d.logf("simd: drained cleanly")
		}
	})
	return d.stopErr
}
