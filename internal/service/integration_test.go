package service_test

// End-to-end integration test for the simd daemon, exercising the full
// acceptance path over real HTTP: a random port, saturating submissions that
// draw queue-full backpressure, NDJSON round streaming, mid-run cancellation,
// and a SIGTERM-driven graceful drain.

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"

	"noisypull"
	"noisypull/internal/service"
)

// errEnoughRounds aborts a progress stream once the test has seen what it
// needs.
var errEnoughRounds = errors.New("saw enough rounds")

func TestDaemonEndToEnd(t *testing.T) {
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	d := service.NewDaemon(service.DaemonConfig{
		Addr: "127.0.0.1:0",
		Service: service.Config{
			QueueCapacity: 4,
			Workers:       2,
			SimWorkers:    1,
			ResultTTL:     time.Hour,
		},
		DrainTimeout: 500 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- d.Run(sigCtx) }()

	client := service.NewClient(d.BaseURL())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Phase 1: a quick job runs to done over HTTP, and its per-seed results
	// are bit-identical to direct noisypull.Run calls (the scheduler's runner
	// leasing must not perturb determinism).
	quick := service.JobSpec{
		N: 150, H: 16, Sources1: 2, Sources0: 0,
		Delta: 0.2, Protocol: "sf", Seeds: []uint64{11, 12},
	}
	st, err := client.Submit(ctx, quick)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := client.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateDone || len(fin.Results) != 2 {
		t.Fatalf("quick job finished as %s with %d results", fin.State, len(fin.Results))
	}
	nm, err := noisypull.UniformNoise(2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range fin.Results {
		want, err := noisypull.Run(noisypull.Config{
			N: 150, H: 16, Sources1: 2, Sources0: 0,
			Noise: nm, Protocol: noisypull.NewSourceFilter(),
			Seed: sr.Seed, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Rounds != want.Rounds || sr.Converged != want.Converged ||
			sr.FinalCorrect != want.FinalCorrect || sr.FirstAllCorrect != want.FirstAllCorrect {
			t.Fatalf("seed %d over HTTP %+v != direct run %+v", sr.Seed, sr, want)
		}
	}

	// Phase 2: saturate the daemon. 8 concurrent endless submissions against
	// queue capacity 4 and 2 workers: at most 6 can be in flight or queued,
	// so at least one (in fact two) must be rejected with 429 → ErrQueueFull.
	endless := func(seed uint64) service.JobSpec {
		return service.JobSpec{
			N: 250, H: 1, Sources1: 1, Sources0: 0,
			Delta: 0.2, Protocol: "voter",
			MaxRounds: 1 << 30, Seeds: []uint64{seed},
		}
	}
	var (
		mu       sync.Mutex
		accepted []string
		rejected int
		wg       sync.WaitGroup
	)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			st, err := client.Submit(ctx, endless(seed))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				accepted = append(accepted, st.ID)
			case errors.Is(err, service.ErrQueueFull):
				rejected++
			default:
				t.Errorf("submit %d: unexpected error %v", seed, err)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if rejected < 1 {
		t.Fatalf("no submission hit queue-full backpressure (accepted %d)", len(accepted))
	}
	if len(accepted) < 4 {
		t.Fatalf("only %d submissions accepted, queue capacity is 4", len(accepted))
	}
	t.Logf("saturation: %d accepted, %d rejected with 429", len(accepted), rejected)

	// Pick two distinct running jobs: one to stream, one to cancel mid-run.
	isAccepted := make(map[string]bool, len(accepted))
	for _, id := range accepted {
		isAccepted[id] = true
	}
	var streamID, cancelID string
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		jobs, err := client.Jobs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var running []string
		for _, j := range jobs {
			if isAccepted[j.ID] && j.State == service.StateRunning {
				running = append(running, j.ID)
			}
		}
		if len(running) >= 2 {
			streamID, cancelID = running[0], running[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if streamID == "" {
		t.Fatal("fewer than 2 accepted jobs ever ran concurrently")
	}

	// Phase 3: stream round progress from a running job. The job is endless,
	// so the callback aborts the stream once enough rounds have been seen.
	rounds := 0
	_, err = client.Stream(ctx, streamID, func(ev service.Event) error {
		if ev.Type == "round" {
			rounds++
			if rounds >= 25 {
				return errEnoughRounds
			}
		}
		return nil
	})
	if !errors.Is(err, errEnoughRounds) {
		t.Fatalf("stream ended with %v after %d round events", err, rounds)
	}

	// Reattach a full stream: its terminal status line must arrive when the
	// drain cancels the job, proving streams end cleanly at shutdown.
	finalCh := make(chan *service.JobStatus, 1)
	streamFail := make(chan error, 1)
	go func() {
		st, err := client.Stream(context.Background(), streamID, nil)
		if err != nil {
			streamFail <- err
			return
		}
		finalCh <- st
	}()

	// Phase 4: cancel a different job mid-run and observe the cancelled state.
	if _, err := client.Cancel(ctx, cancelID); err != nil {
		t.Fatal(err)
	}
	cst, err := client.Wait(ctx, cancelID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cst.State != service.StateCancelled {
		t.Fatalf("cancelled job finished as %s", cst.State)
	}

	// Phase 5: SIGTERM the daemon. Endless jobs are still in flight, so the
	// 500ms drain deadline must force-cancel them and Run must report that.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Run returned %v, want DeadlineExceeded from the forced drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	// The drained service holds only terminal jobs and refuses new work.
	for state, n := range d.Service().Jobs() {
		if !state.Terminal() && n > 0 {
			t.Errorf("%d job(s) left in non-terminal state %s after drain", n, state)
		}
	}
	if _, err := d.Service().Submit(quick); !errors.Is(err, service.ErrDraining) {
		t.Errorf("post-drain submit error = %v, want ErrDraining", err)
	}

	// And the background stream observed its job's terminal status.
	select {
	case st := <-finalCh:
		if st == nil || st.State != service.StateCancelled {
			t.Fatalf("streamed job's terminal status = %+v, want cancelled", st)
		}
	case err := <-streamFail:
		t.Fatalf("background stream failed: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("background stream never delivered a terminal status line")
	}
}
