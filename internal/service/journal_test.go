package service

// Unit and fuzz tests for the write-ahead job journal: append/replay round
// trips, torn-tail tolerance at every byte offset, stale-checkpoint
// invalidation, duplicate and foreign records, and the nil no-op contract.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// buildJournal writes a journal with the given appends into dir and returns
// the file path and its raw bytes.
func buildJournal(t *testing.T, dir string, write func(jl *journal)) (string, []byte) {
	t.Helper()
	jl, err := openJournal(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	write(jl)
	jl.close()
	data, err := os.ReadFile(jl.path)
	if err != nil {
		t.Fatal(err)
	}
	return jl.path, data
}

func TestJournalRoundTrip(t *testing.T) {
	spec := quickSpec(1, 2)
	path, _ := buildJournal(t, t.TempDir(), func(jl *journal) {
		jl.appendSubmit("j-000007", &spec)
		jl.appendState("j-000007", StateRunning)
		jl.appendSeed("j-000007", 1, &SeedResult{Seed: 1, Rounds: 12, Converged: true}, 13)
		jl.appendCheckpoint("j-000007", 2, 40, []byte("snapshot-bytes"), 55)
	})
	out, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.records != 4 || out.torn || len(out.jobs) != 1 || out.maxID != 7 {
		t.Fatalf("replay outcome %+v", out)
	}
	j := out.jobs[0]
	if j.id != "j-000007" || j.terminal != "" || len(j.results) != 1 || j.results[0].Rounds != 12 {
		t.Fatalf("recovered job %+v", j)
	}
	if j.ck == nil || j.ck.seed != 2 || j.ck.round != 40 || !bytes.Equal(j.ck.data, []byte("snapshot-bytes")) {
		t.Fatalf("checkpoint %+v", j.ck)
	}
	if j.seq != 55 {
		t.Fatalf("seq = %d, want 55 (max of journaled seqs)", j.seq)
	}
	if j.spec.N != spec.N || j.spec.Protocol != spec.Protocol || len(j.spec.Seeds) != 2 {
		t.Fatalf("spec did not round-trip: %+v", j.spec)
	}
}

func TestJournalTerminalClearsCheckpoint(t *testing.T) {
	spec := quickSpec(1)
	path, _ := buildJournal(t, t.TempDir(), func(jl *journal) {
		jl.appendSubmit("j-000001", &spec)
		jl.appendCheckpoint("j-000001", 1, 10, []byte("x"), 3)
		jl.appendTerminal("j-000001", StateDone, "")
	})
	out, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j := out.jobs[0]
	if j.terminal != StateDone || j.ck != nil {
		t.Fatalf("terminal job kept checkpoint: terminal=%q ck=%v", j.terminal, j.ck)
	}
}

// TestJournalSeedResultInvalidatesCheckpoint pins the staleness rule: once a
// seed has a journaled result, any checkpoint for that seed is obsolete (the
// trial finished) and must not be offered for resume.
func TestJournalSeedResultInvalidatesCheckpoint(t *testing.T) {
	spec := quickSpec(1, 2)
	path, _ := buildJournal(t, t.TempDir(), func(jl *journal) {
		jl.appendSubmit("j-000002", &spec)
		jl.appendCheckpoint("j-000002", 1, 30, []byte("stale"), 5)
		jl.appendSeed("j-000002", 1, &SeedResult{Seed: 1, Rounds: 44}, 9)
		// A later checkpoint for the already-finished seed is also ignored.
		jl.appendCheckpoint("j-000002", 1, 10, []byte("also stale"), 11)
	})
	out, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j := out.jobs[0]
	if j.ck != nil {
		t.Fatalf("stale checkpoint survived: %+v", j.ck)
	}
	if len(j.results) != 1 {
		t.Fatalf("results %+v", j.results)
	}
}

func TestJournalSkipsDuplicatesAndForeignRecords(t *testing.T) {
	spec := quickSpec(1)
	path, _ := buildJournal(t, t.TempDir(), func(jl *journal) {
		jl.appendSubmit("j-000003", &spec)
		jl.appendSubmit("j-000003", &spec) // duplicate submit: first wins
		jl.appendSeed("j-000003", 1, &SeedResult{Seed: 1, Rounds: 7}, 1)
		jl.appendSeed("j-000003", 1, &SeedResult{Seed: 1, Rounds: 99}, 2) // duplicate seed
		jl.appendSeed("j-999999", 5, &SeedResult{Seed: 5}, 1)             // unknown job
		jl.append(&journalRecord{T: "hologram", Job: "j-000003"}, false)  // unknown type
	})
	out, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.jobs) != 1 {
		t.Fatalf("%d jobs recovered", len(out.jobs))
	}
	j := out.jobs[0]
	if len(j.results) != 1 || j.results[0].Rounds != 7 {
		t.Fatalf("duplicate seed record was not deduplicated: %+v", j.results)
	}
}

// TestJournalReplayTruncatedAtEveryOffset simulates a torn write at every
// possible byte position: replay must never error or panic, and must recover
// exactly the records whose trailing newline survived.
func TestJournalReplayTruncatedAtEveryOffset(t *testing.T) {
	spec := quickSpec(3, 4)
	fullPath, data := buildJournal(t, t.TempDir(), func(jl *journal) {
		jl.appendSubmit("j-000001", &spec)
		jl.appendState("j-000001", StateRunning)
		jl.appendSeed("j-000001", 3, &SeedResult{Seed: 3, Rounds: 21, Converged: true}, 8)
		jl.appendCheckpoint("j-000001", 4, 17, []byte{0x00, 0x01, 0xFF}, 12)
		jl.appendTerminal("j-000001", StateFailed, "boom")
	})
	full, err := replayJournal(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if full.records != 5 {
		t.Fatalf("full journal has %d records", full.records)
	}
	// whole[i] = number of complete lines within data[:i].
	whole := make([]int, len(data)+1)
	n := 0
	for i, b := range data {
		if b == '\n' {
			n++
		}
		whole[i+1] = n
	}
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := replayJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		// A remainder that lost only its trailing newline is still a complete
		// record and is kept; anything else is the torn tail and is dropped.
		lineStart := 0
		for i := 0; i < cut; i++ {
			if data[i] == '\n' {
				lineStart = i + 1
			}
		}
		rest := data[lineStart:cut]
		wantRecords, wantTorn := whole[cut], false
		if len(rest) > 0 {
			if json.Valid(rest) {
				wantRecords++
			} else {
				wantTorn = true
			}
		}
		if out.records != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, out.records, wantRecords)
		}
		if out.torn != wantTorn {
			t.Fatalf("cut=%d: torn=%v, want %v", cut, out.torn, wantTorn)
		}
	}
}

func TestJournalReplayGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	cases := [][]byte{
		nil,
		[]byte("\n\n\n"),
		[]byte("not json at all\n"),
		[]byte(`{"t":"submit"`), // torn mid-object
		[]byte("{\"t\":\"submit\",\"job\":\"j-000001\"}\n\x00\x01\x02\xFF"),
		bytes.Repeat([]byte{0xDE, 0xAD}, 4096),
		[]byte(`{"t":"seed","job":"j-000001","seed":18446744073709551615}` + "\n"),
	}
	for i, data := range cases {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := replayJournal(path); err != nil {
			t.Fatalf("case %d: replay returned error: %v", i, err)
		}
	}
	// A missing file is an empty journal, not an error.
	out, err := replayJournal(filepath.Join(dir, "no-such-journal"))
	if err != nil || out.records != 0 {
		t.Fatalf("missing file: %+v, %v", out, err)
	}
}

// TestJournalNilAndClosedAreNoops pins the nil-receiver contract (a service
// without -journal-dir) and the post-close sticky error.
func TestJournalNilAndClosedAreNoops(t *testing.T) {
	var jl *journal
	spec := quickSpec(1)
	jl.appendSubmit("j-000001", &spec)
	jl.appendState("j-000001", StateRunning)
	jl.appendSeed("j-000001", 1, &SeedResult{}, 1)
	jl.appendCheckpoint("j-000001", 1, 1, []byte("x"), 1)
	jl.appendTerminal("j-000001", StateDone, "")
	jl.close()

	real, err := openJournal(t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	real.close()
	real.appendSubmit("j-000001", &spec) // must not panic or write
	real.close()                         // idempotent
	data, err := os.ReadFile(real.path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("append after close wrote %d bytes", len(data))
	}
}

// FuzzJournalReplay throws arbitrary bytes at the replay path: it must never
// panic and never return an error for file content (only I/O errors surface).
func FuzzJournalReplay(f *testing.F) {
	spec := quickSpec(1, 2)
	dir := f.TempDir()
	_, valid := func() (string, []byte) {
		jl, err := openJournal(dir, nil, nil)
		if err != nil {
			f.Fatal(err)
		}
		jl.appendSubmit("j-000001", &spec)
		jl.appendState("j-000001", StateRunning)
		jl.appendSeed("j-000001", 1, &SeedResult{Seed: 1, Rounds: 9}, 4)
		jl.appendCheckpoint("j-000001", 2, 33, []byte("snap"), 6)
		jl.appendTerminal("j-000001", StateDone, "")
		jl.close()
		data, err := os.ReadFile(jl.path)
		if err != nil {
			f.Fatal(err)
		}
		return jl.path, data
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(""))
	f.Add([]byte("{\"t\":\"submit\",\"job\":\"j-0\"}\ngarbage"))
	f.Add([]byte("{\"t\":\"terminal\",\"job\":\"j-1\",\"state\":\"done\"}\n"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), journalFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := replayJournal(path)
		if err != nil {
			t.Fatalf("replay errored on file content: %v", err)
		}
		if out == nil {
			t.Fatal("nil outcome without error")
		}
		for _, j := range out.jobs {
			if j.id == "" {
				t.Fatal("recovered job with empty id")
			}
		}
	})
}
