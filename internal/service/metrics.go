package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics is the service's counter set, exported in Prometheus text format
// at /metrics. Everything is an atomic so the hot paths (one increment per
// simulated round) never contend on a lock.
type metrics struct {
	submitted atomic.Int64
	rejected  atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	evicted   atomic.Int64
	running   atomic.Int64
	rounds    atomic.Int64
	streams   atomic.Int64
	faults    atomic.Int64
	panics    atomic.Int64

	// Durability counters (journal, checkpoint/resume, watchdog).
	recovered       atomic.Int64 // jobs re-enqueued by journal replay
	watchdogKills   atomic.Int64 // jobs failed for exceeding max_wall_ms
	checkpoints     atomic.Int64 // engine checkpoints journaled
	checkpointBytes atomic.Int64 // size of the most recent checkpoint
	replayMS        atomic.Int64 // last journal replay duration
	journalErrors   atomic.Int64 // journal write failures (durability lost)
}

// WriteMetrics emits the service metrics in Prometheus text exposition
// format.
func (s *Service) WriteMetrics(w io.Writer) error {
	m := &s.metrics
	byState := s.Jobs()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP simd_jobs_submitted_total Jobs accepted into the queue.\n")
	p("# TYPE simd_jobs_submitted_total counter\n")
	p("simd_jobs_submitted_total %d\n", m.submitted.Load())
	p("# HELP simd_jobs_rejected_total Submissions rejected with queue-full backpressure.\n")
	p("# TYPE simd_jobs_rejected_total counter\n")
	p("simd_jobs_rejected_total %d\n", m.rejected.Load())
	p("# HELP simd_jobs_completed_total Jobs that reached a terminal state.\n")
	p("# TYPE simd_jobs_completed_total counter\n")
	p("simd_jobs_completed_total{state=\"done\"} %d\n", m.done.Load())
	p("simd_jobs_completed_total{state=\"failed\"} %d\n", m.failed.Load())
	p("simd_jobs_completed_total{state=\"cancelled\"} %d\n", m.cancelled.Load())
	p("# HELP simd_jobs_evicted_total Terminal jobs evicted after their TTL.\n")
	p("# TYPE simd_jobs_evicted_total counter\n")
	p("simd_jobs_evicted_total %d\n", m.evicted.Load())
	p("# HELP simd_jobs_running Jobs currently executing on a scheduler worker.\n")
	p("# TYPE simd_jobs_running gauge\n")
	p("simd_jobs_running %d\n", m.running.Load())
	p("# HELP simd_queue_depth Jobs waiting for a scheduler worker.\n")
	p("# TYPE simd_queue_depth gauge\n")
	p("simd_queue_depth %d\n", s.QueueDepth())
	p("# HELP simd_jobs_stored Jobs currently held in the result store, by state.\n")
	p("# TYPE simd_jobs_stored gauge\n")
	for _, st := range sortStates {
		p("simd_jobs_stored{state=%q} %d\n", string(st), byState[st])
	}
	p("# HELP simd_rounds_total Simulated rounds executed across all jobs.\n")
	p("# TYPE simd_rounds_total counter\n")
	p("simd_rounds_total %d\n", m.rounds.Load())
	p("# HELP simd_streams_active Open progress streams.\n")
	p("# TYPE simd_streams_active gauge\n")
	p("simd_streams_active %d\n", m.streams.Load())
	p("# HELP simd_faults_injected_total Scheduled fault events applied across all jobs.\n")
	p("# TYPE simd_faults_injected_total counter\n")
	p("simd_faults_injected_total %d\n", m.faults.Load())
	p("# HELP simd_worker_panics_total Protocol/engine panics recovered by scheduler workers.\n")
	p("# TYPE simd_worker_panics_total counter\n")
	p("simd_worker_panics_total %d\n", m.panics.Load())
	p("# HELP simd_jobs_recovered_total Interrupted jobs re-enqueued by journal replay.\n")
	p("# TYPE simd_jobs_recovered_total counter\n")
	p("simd_jobs_recovered_total %d\n", m.recovered.Load())
	p("# HELP simd_watchdog_kills_total Jobs failed for exceeding their max_wall_ms budget.\n")
	p("# TYPE simd_watchdog_kills_total counter\n")
	p("simd_watchdog_kills_total %d\n", m.watchdogKills.Load())
	p("# HELP simd_checkpoints_total Engine checkpoints written to the journal.\n")
	p("# TYPE simd_checkpoints_total counter\n")
	p("simd_checkpoints_total %d\n", m.checkpoints.Load())
	p("# HELP simd_checkpoint_bytes Size of the most recently journaled engine checkpoint.\n")
	p("# TYPE simd_checkpoint_bytes gauge\n")
	p("simd_checkpoint_bytes %d\n", m.checkpointBytes.Load())
	p("# HELP simd_journal_replay_ms Duration of the startup journal replay.\n")
	p("# TYPE simd_journal_replay_ms gauge\n")
	p("simd_journal_replay_ms %d\n", m.replayMS.Load())
	p("# HELP simd_journal_errors_total Journal write failures (durability degraded).\n")
	p("# TYPE simd_journal_errors_total counter\n")
	p("simd_journal_errors_total %d\n", m.journalErrors.Load())
	if err == nil && s.cfg.ExtraMetrics != nil {
		err = s.cfg.ExtraMetrics(w)
	}
	return err
}
