package service

// End-to-end crash-recovery smoke test: build cmd/simd, start it with a
// journal, SIGKILL it mid-run, restart it over the same journal, and require
// the job to finish with per-seed results identical to an uninterrupted
// engine run — for both the agents (exact) and counts backends. This is the
// test the durability feature exists to pass; CI runs it with -race.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// simdProc is one running simd child process.
type simdProc struct {
	cmd  *exec.Cmd
	addr string
	out  *lockedBuffer
	done chan error
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// buildSimd compiles cmd/simd once per test process.
var buildSimd = sync.OnceValues(func() (string, error) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		return "", err
	}
	dir, err := os.MkdirTemp("", "simd-e2e-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "simd")
	cmd := exec.Command(goBin, "build", "-o", bin, "noisypull/cmd/simd")
	cmd.Dir = "../.." // package dir → module root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

// startSimd launches the daemon on a random port and waits for its
// "listening on" line to learn the bound address.
func startSimd(t *testing.T, bin, journalDir string) *simdProc {
	t.Helper()
	p := &simdProc{out: &lockedBuffer{}, done: make(chan error, 1)}
	p.cmd = exec.Command(bin, "-addr", "127.0.0.1:0", "-journal-dir", journalDir, "-ttl", "10m")
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			_, _ = p.out.Write([]byte(line + "\n"))
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					select {
					case addrCh <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	go func() { p.done <- p.cmd.Wait() }()
	select {
	case addr := <-addrCh:
		p.addr = addr
	case err := <-p.done:
		t.Fatalf("simd exited before listening: %v\n%s", err, p.out.String())
	case <-time.After(15 * time.Second):
		_ = p.cmd.Process.Kill()
		t.Fatalf("simd never reported its address\n%s", p.out.String())
	}
	return p
}

func (p *simdProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	<-p.done // reap; exit error from SIGKILL is expected
}

// waitDaemonReady polls /readyz until the daemon reports ready, returning the
// replay summary it served.
func waitDaemonReady(t *testing.T, c *Client) *ReplaySummary {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ready, replay, err := c.Ready(ctx)
		cancel()
		if err == nil && ready {
			return replay
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("restarted daemon never became ready")
	return nil
}

func TestRestartSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills child processes")
	}
	bin, err := buildSimd()
	if err != nil {
		t.Skipf("cannot build simd: %v", err)
	}

	cases := []struct {
		name     string
		spec     JobSpec
		killAt   int // SIGKILL once the stream reports this round of seed 1
	}{
		{
			// Exact per-agent backend: ~8k rounds/s, so 8000 rounds/seed keeps
			// the daemon busy for ~1s/seed while we kill it at round 2000.
			name: "agents",
			spec: JobSpec{
				N: 2000, H: 1, Sources1: 1, Delta: 0.2,
				Protocol: "voter", Backend: "exact",
				MaxRounds: 8000, StabilityWindow: 8000,
				CheckpointRounds: 500,
				Seeds:            []uint64{1, 2},
			},
			killAt: 2000,
		},
		{
			// Countable-state backend: rounds are O(states), ~1.2M rounds/s;
			// 2M rounds/seed gives the same margin.
			name: "counts",
			spec: JobSpec{
				N: 100_000, H: 1, Sources1: 1, Delta: 0.2,
				Protocol: "voter", Backend: "counts",
				MaxRounds: 2_000_000, StabilityWindow: 2_000_000,
				CheckpointRounds: 100_000,
				Seeds:            []uint64{1, 2},
			},
			killAt: 400_000,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			journalDir := t.TempDir()

			// The uninterrupted control, straight on the engine.
			want := make([]SeedResult, len(tc.spec.Seeds))
			for i, seed := range tc.spec.Seeds {
				want[i] = directResult(t, tc.spec, seed)
			}

			p1 := startSimd(t, bin, journalDir)
			c1 := NewClient("http://" + p1.addr)
			waitDaemonReady(t, c1)
			ctx := context.Background()
			st, err := c1.Submit(ctx, tc.spec)
			if err != nil {
				t.Fatalf("submit: %v\n%s", err, p1.out.String())
			}

			// Stream until seed 1 passes the kill threshold, then SIGKILL the
			// daemon mid-trial. The stream dies with the process; any error
			// after the kill is expected.
			killed := errors.New("killed")
			streamCtx, cancelStream := context.WithTimeout(ctx, 60*time.Second)
			defer cancelStream()
			_, err = c1.Stream(streamCtx, st.ID, func(ev Event) error {
				if ev.Type == "round" && ev.Seed == tc.spec.Seeds[0] && ev.Round >= tc.killAt {
					return killed
				}
				if ev.Type == "status" || (ev.Type == "seed" && ev.Seed == tc.spec.Seeds[len(tc.spec.Seeds)-1]) {
					return fmt.Errorf("job finished before the kill threshold; raise MaxRounds")
				}
				return nil
			})
			if !errors.Is(err, killed) {
				t.Fatalf("stream before kill: %v\n%s", err, p1.out.String())
			}
			p1.kill9(t)

			p2 := startSimd(t, bin, journalDir)
			defer func() {
				_ = p2.cmd.Process.Kill()
				<-p2.done
			}()
			c2 := NewClient("http://" + p2.addr)
			replay := waitDaemonReady(t, c2)
			if replay == nil || replay.Resumed != 1 {
				t.Fatalf("replay summary after restart: %+v\n%s", replay, p2.out.String())
			}

			waitCtx, cancelWait := context.WithTimeout(ctx, 120*time.Second)
			defer cancelWait()
			final, err := c2.Wait(waitCtx, st.ID, 50*time.Millisecond)
			if err != nil {
				t.Fatalf("wait after restart: %v\n%s", err, p2.out.String())
			}
			if final.State != StateDone {
				t.Fatalf("recovered job ended %s (%s)\n%s", final.State, final.Error, p2.out.String())
			}
			if len(final.Results) != len(want) {
				t.Fatalf("recovered job has %d results, want %d", len(final.Results), len(want))
			}
			for i := range want {
				if !sameSeedResult(final.Results[i], want[i]) {
					t.Errorf("seed %d: recovered %+v != uninterrupted %+v", want[i].Seed, final.Results[i], want[i])
				}
			}
		})
	}
}
