package service

// Unit tests for the scheduler core: spec validation, the done path's
// bit-equality with direct noisypull.Run, queue backpressure, pending and
// running cancellation, TTL eviction, clean drain, and metrics output.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"noisypull"
)

// quickSpec is a small SF job that finishes in well under a second.
func quickSpec(seeds ...uint64) JobSpec {
	return JobSpec{
		N: 150, H: 16, Sources1: 2, Sources0: 0,
		Delta:    0.2,
		Protocol: "sf",
		Seeds:    seeds,
	}
}

// endlessSpec cannot converge (voter under persistent noise) and runs until
// cancelled.
func endlessSpec(seeds ...uint64) JobSpec {
	return JobSpec{
		N: 250, H: 1, Sources1: 1, Sources0: 0,
		Delta:     0.2,
		Protocol:  "voter",
		MaxRounds: 1 << 30,
		Seeds:     seeds,
	}
}

func waitState(t *testing.T, s *Service, id string, want State) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s (error %q)", id, st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return nil
}

func TestSpecValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	p := 0.1
	bad := []JobSpec{
		{}, // no protocol
		{Protocol: "nope", N: 100, H: 4, Sources1: 1, Delta: 0.2},
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2, P01: &p}, // p01 without p10
		{Protocol: "ssf", N: 100, H: 4, Sources1: 1, P01: &p, P10: &p},   // binary channel, alphabet 4
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2, Corruption: "sideways"},
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2, Backend: "warp"},
		{Protocol: "sf", N: 1, H: 4, Sources1: 1, Delta: 0.2},                   // engine validation bubbles up
		{Protocol: "sf", N: 100, H: 4, Sources1: 1, Delta: 0.2, Backend: "counts"}, // SF is not countable
		{Protocol: "ssf", N: 100, H: 4, Sources1: 1, Delta: 0.2, Backend: "counts"},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	s2 := New(Config{Workers: 1, MaxSeedsPerJob: 3})
	defer s2.Close()
	if _, err := s2.Submit(quickSpec(1, 2, 3, 4)); err == nil {
		t.Error("submission above MaxSeedsPerJob accepted")
	}
}

// TestJobDoneMatchesDirectRun pins service determinism: a job's per-seed
// results must be identical to one-shot noisypull.Run calls, across leased
// runner reuse (two seeds share one runner via Reset).
func TestJobDoneMatchesDirectRun(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	st, err := s.Submit(quickSpec(5, 9))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateDone)
	if final.CompletedSeeds != 2 || len(final.Results) != 2 {
		t.Fatalf("done job has %d/%d results", final.CompletedSeeds, len(final.Results))
	}
	nm, err := noisypull.UniformNoise(2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range final.Results {
		want, err := noisypull.Run(noisypull.Config{
			N: 150, H: 16, Sources1: 2, Sources0: 0,
			Noise: nm, Protocol: noisypull.NewSourceFilter(),
			Seed: sr.Seed, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Rounds != want.Rounds || sr.Converged != want.Converged ||
			sr.FinalCorrect != want.FinalCorrect || sr.FirstAllCorrect != want.FirstAllCorrect {
			t.Fatalf("seed %d: service %+v != direct %+v", sr.Seed, sr, want)
		}
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatal("terminal job missing timestamps")
	}
}

// TestCountsBackendJob: a counts-backend job for a countable baseline is
// accepted, runs (two seeds share one leased runner via Reset), and matches
// direct noisypull.Run results bit-for-bit.
func TestCountsBackendJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := JobSpec{
		N: 100000, H: 8, Sources1: 100, Sources0: 0,
		Delta:     0.1,
		Protocol:  "majority",
		Backend:   "counts",
		MaxRounds: 200,
		Seeds:     []uint64{3, 8},
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateDone)
	if len(final.Results) != 2 {
		t.Fatalf("done job has %d results, want 2", len(final.Results))
	}
	nm, err := noisypull.UniformNoise(2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range final.Results {
		want, err := noisypull.Run(noisypull.Config{
			N: 100000, H: 8, Sources1: 100,
			Noise: nm, Protocol: noisypull.MajorityBaseline,
			Backend: noisypull.BackendCounts, MaxRounds: 200,
			Seed: sr.Seed, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Rounds != want.Rounds || sr.Converged != want.Converged ||
			sr.FinalCorrect != want.FinalCorrect {
			t.Fatalf("seed %d: service %+v != direct %+v", sr.Seed, sr, want)
		}
	}
}

func TestQueueBackpressureAndPendingCancel(t *testing.T) {
	s := New(Config{QueueCapacity: 1, Workers: 1})
	defer s.Close()

	running, err := s.Submit(endlessSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)

	queued, err := s.Submit(endlessSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(endlessSpec(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit error = %v, want ErrQueueFull", err)
	}

	// Cancel the queued job: it finalizes without ever running.
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled || st.Started != nil {
		t.Fatalf("queued job after cancel: %+v", st)
	}

	// Cancel the running job: the engine stops within one round.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, running.ID, StateCancelled)
	if fin.State != StateCancelled {
		t.Fatalf("running job after cancel: %s", fin.State)
	}
}

func TestTTLEviction(t *testing.T) {
	s := New(Config{Workers: 1, ResultTTL: 50 * time.Millisecond})
	defer s.Close()
	st, err := s.Submit(quickSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Get(st.ID); errors.Is(err, ErrNotFound) {
			if s.metrics.evicted.Load() == 0 {
				t.Fatal("job evicted but eviction counter is zero")
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("terminal job was never evicted")
}

func TestDrainClean(t *testing.T) {
	s := New(Config{Workers: 2})
	a, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s after clean drain: %s (want done)", id, st.State)
		}
	}
	if _, err := s.Submit(quickSpec(9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 4})
	run, err := s.Submit(endlessSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(endlessSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, run.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	for _, id := range []string{run.ID, queued.ID} {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCancelled {
			t.Fatalf("job %s after forced drain: %s (want cancelled)", id, st.State)
		}
	}
}

func TestSubscribeStreamsRoundsAndCloses(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 4})
	defer s.Close()
	// Park the single worker on an endless job so the quick job stays pending
	// while we attach the subscription.
	blocker, err := s.Submit(endlessSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)
	// A round-capped job: 50 rounds + 1 seed event fit well inside the
	// subscriber buffer, so nothing can be dropped even if the consumer lags.
	capped := endlessSpec(4)
	capped.MaxRounds = 50
	st, err := s.Submit(capped)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	rounds, seeds := 0, 0
	for ev := range ch {
		switch ev.Type {
		case "round":
			rounds++
		case "seed":
			seeds++
		}
	}
	if rounds != 50 || seeds != 1 {
		t.Fatalf("stream saw %d round events (want 50) and %d seed events (want 1)", rounds, seeds)
	}
	// Terminal job: a fresh subscription closes immediately.
	waitState(t, s, st.ID, StateDone)
	ch2, unsub2, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub2()
	if _, ok := <-ch2; ok {
		t.Fatal("subscription to a terminal job delivered an event")
	}
}

func TestMetricsOutput(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	st, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		"simd_jobs_submitted_total 1",
		`simd_jobs_completed_total{state="done"} 1`,
		"simd_rounds_total",
		"simd_queue_depth 0",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("metrics missing %q:\n%s", line, out)
		}
	}
}
