// Package service turns the simulation engine into a long-running
// simulation-as-a-service subsystem: a bounded job queue with backpressure,
// a scheduler whose workers lease reusable noisypull.Runners across jobs
// (the RunBatch amortization, extended to a daemon's lifetime), a per-job
// state machine (pending → running → done/failed/cancelled) with context
// cancellation threaded into the engine's round loop, an in-memory result
// store with TTL eviction, and streaming round-level progress. cmd/simd
// exposes it over HTTP; Client is the matching Go client.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"noisypull"
)

// Sentinel errors mapped to HTTP statuses by the handlers (and back by the
// client).
var (
	// ErrQueueFull means the job queue is at capacity; retry later (429).
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrDraining means the service is shutting down and accepts no new
	// jobs (503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound means no job with the requested id exists (404).
	ErrNotFound = errors.New("service: no such job")
	// ErrNotReady means the service is still replaying its journal and does
	// not accept jobs yet (503; poll /readyz).
	ErrNotReady = errors.New("service: replaying journal, not ready")
)

// Config tunes a Service. The zero value gets sensible defaults from New.
type Config struct {
	// QueueCapacity bounds the number of jobs waiting to run; submissions
	// beyond it are rejected with ErrQueueFull (backpressure, not buffering).
	// Default 16.
	QueueCapacity int
	// Workers is the number of scheduler goroutines executing jobs (each
	// holds at most one leased runner). Default GOMAXPROCS.
	Workers int
	// SimWorkers is the engine worker count per simulation. Default 1, so a
	// loaded daemon's CPU use is governed by Workers alone; raise it for
	// latency-sensitive single-job deployments.
	SimWorkers int
	// ResultTTL is how long a terminal job remains queryable before the
	// janitor evicts it. Default 1h.
	ResultTTL time.Duration
	// MaxSeedsPerJob bounds the trials a single submission may request.
	// Default 1024.
	MaxSeedsPerJob int
	// JournalDir, when set, enables the write-ahead job journal: every
	// submission, per-seed result, engine checkpoint, and terminal outcome is
	// appended to an NDJSON file there, and startup replays it — terminal
	// jobs come back queryable, interrupted jobs re-enqueue and resume from
	// their last checkpoint. Empty disables durability (the default).
	JournalDir string
	// CheckpointRounds is the default engine-checkpoint cadence (rounds
	// between journaled snapshots) applied to jobs whose spec leaves
	// checkpoint_rounds unset. 0 disables default checkpointing; it only
	// takes effect with JournalDir set.
	CheckpointRounds int
	// Dispatcher, when non-nil, replaces local seed execution: scheduler
	// workers hand each job's remaining seeds to it instead of running them
	// on a leased runner. The fleet coordinator implements it to fan seeds
	// out across worker nodes; everything around the dispatch — queueing,
	// backpressure, the job state machine, journaling, recovery, streams,
	// and the watchdog — is shared with the local path.
	Dispatcher Dispatcher
	// ExtraMetrics, if non-nil, is appended to the /metrics output after the
	// service's own counters (fleet rollups in coordinator/worker mode).
	ExtraMetrics func(w io.Writer) error
	// Logf, if non-nil, receives one line per job state transition.
	Logf func(format string, args ...any)
}

// DispatchJob describes the remaining work of one job handed to a
// Dispatcher: the spec, its shape fingerprint (the lease identity), and the
// seeds that still need results, in spec order.
type DispatchJob struct {
	ID          string
	Spec        JobSpec
	Fingerprint string
	Seeds       []uint64

	// Banked are results recovered from the lease journal: workers delivered
	// them before a coordinator crash but they were not yet part of the
	// released prefix. The dispatcher must fold them into its merge instead
	// of re-dispatching their seeds — already-delivered seeds never
	// recompute. Always a subset of Seeds.
	Banked []SeedResult
	// Leases are the in-flight leases recovered from the lease journal. The
	// dispatcher re-adopts them under their original ids, owners, and
	// attempt counts so workers still executing (or re-delivering) them land
	// on live leases instead of being cancelled. Their seed sets are
	// pairwise disjoint and disjoint from Banked.
	Leases []RecoveredLease
}

// Dispatcher executes a job's seeds somewhere other than the scheduler
// worker's local runner. Dispatch must call emit exactly once per seed, in
// the order of job.Seeds (an order-free merge upstream is expected to
// restore that order), and return nil only after every seed was emitted.
// Honoring ctx promptly is the cancellation/watchdog contract; returning
// ctx.Err() after cancellation finalizes the job as cancelled (or
// watchdog-failed), any other error as failed.
type Dispatcher interface {
	Dispatch(ctx context.Context, job DispatchJob, emit func(SeedResult)) error
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueCapacity <= 0 {
		out.QueueCapacity = 16
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.SimWorkers <= 0 {
		out.SimWorkers = 1
	}
	if out.ResultTTL <= 0 {
		out.ResultTTL = time.Hour
	}
	if out.MaxSeedsPerJob <= 0 {
		out.MaxSeedsPerJob = 1024
	}
	return out
}

// Service is the simulation job scheduler. Create it with New, submit with
// Submit, and stop it with Drain (graceful) or Close (forced).
type Service struct {
	cfg Config

	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // ids in submission order, for List
	queue    chan *job
	draining bool
	nextID   uint64

	workers     sync.WaitGroup
	janitorStop chan struct{}
	stopOnce    sync.Once

	// Durability state. journal is nil without Config.JournalDir. ready
	// flips true once journal replay finishes (immediately when there is no
	// journal); Submit returns ErrNotReady before that.
	journal    *journal
	ready      atomic.Bool
	replayMu   sync.Mutex
	replay     ReplaySummary
	replayDone bool
	// fleetQuarantine holds node quarantine reconstructed by journal replay
	// (node id → reason), for the fleet coordinator to re-adopt. Written
	// once by recover, under replayMu.
	fleetQuarantine map[string]string

	metrics metrics
}

// New starts a Service: cfg.Workers scheduler goroutines plus a TTL janitor.
// It panics if the journal cannot be opened — embedders that set JournalDir
// and want the error instead use Open (New predates durability and keeps its
// simple signature for the common journal-less case, where it cannot fail).
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a Service like New, returning journal initialization errors
// instead of panicking. With Config.JournalDir set, the returned service is
// not yet ready: it replays the journal in the background (Submit returns
// ErrNotReady meanwhile) and flips ready once recovery finishes — poll
// Ready or GET /readyz.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:         cfg,
		rootCtx:     ctx,
		rootCancel:  cancel,
		jobs:        make(map[string]*job),
		queue:       make(chan *job, cfg.QueueCapacity),
		janitorStop: make(chan struct{}),
	}
	if cfg.JournalDir != "" {
		jl, err := openJournal(cfg.JournalDir, s.logf, func() { s.metrics.journalErrors.Add(1) })
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = jl
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	go s.janitor()
	if s.journal != nil {
		go s.recover()
	} else {
		s.replayMu.Lock()
		s.replayDone = true
		s.replayMu.Unlock()
		s.ready.Store(true)
	}
	return s, nil
}

// Ready reports whether the service accepts submissions (journal replay
// finished, not draining).
func (s *Service) Ready() bool {
	if !s.ready.Load() {
		return false
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return !draining
}

// Replayed reports whether journal replay has finished (immediately true
// without a journal). The fleet wire gates on this rather than Ready(): a
// draining coordinator must still accept late result deliveries so
// in-flight dispatches can finish before the drain deadline.
func (s *Service) Replayed() bool {
	return s.ready.Load()
}

// AppendLease journals one fleet lease-lifecycle record. The coordinator
// calls it through its Binding; without a journal it is a no-op.
func (s *Service) AppendLease(rec LeaseRecord) {
	s.journal.appendLease(&rec)
}

// RecoveredQuarantine returns the node quarantine reconstructed by journal
// replay (node id → reason), nil before replay finishes or without a
// journal. The fleet coordinator re-adopts it so a quarantined node does
// not regain leases just because the coordinator restarted.
func (s *Service) RecoveredQuarantine() map[string]string {
	s.replayMu.Lock()
	defer s.replayMu.Unlock()
	if len(s.fleetQuarantine) == 0 {
		return nil
	}
	out := make(map[string]string, len(s.fleetQuarantine))
	for k, v := range s.fleetQuarantine {
		out[k] = v
	}
	return out
}

// JobState reports a job's current state by id.
func (s *Service) JobState(id string) (State, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return "", false
	}
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	return st, true
}

// ReplayStatus returns the journal replay summary and whether replay has
// finished. Before completion the summary is zero; without a journal it is
// zero and done.
func (s *Service) ReplayStatus() (ReplaySummary, bool) {
	s.replayMu.Lock()
	defer s.replayMu.Unlock()
	return s.replay, s.replayDone
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates the spec, stores the job, journals it, and enqueues it.
// It returns the pending status, or ErrQueueFull / ErrDraining /
// ErrNotReady / a validation error.
func (s *Service) Submit(spec JobSpec) (*JobStatus, error) {
	if !s.ready.Load() {
		return nil, ErrNotReady
	}
	spec.normalize()
	if spec.CheckpointRounds == 0 {
		spec.CheckpointRounds = s.cfg.CheckpointRounds
	}
	if len(spec.Seeds) > s.cfg.MaxSeedsPerJob {
		return nil, fmt.Errorf("spec: %d seeds exceed the per-job limit %d", len(spec.Seeds), s.cfg.MaxSeedsPerJob)
	}
	cfg, err := spec.build()
	if err != nil {
		return nil, err
	}
	cfg.Workers = s.cfg.SimWorkers

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("j-%06d", s.nextID),
		spec:    spec,
		shape:   spec.shape(),
		cfg:     cfg,
		state:   StatePending,
		created: time.Now(),
	}
	j.ctx, j.cancel = context.WithCancel(s.rootCtx)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Journal the submission inside the critical section that checked
	// draining: Drain flips draining and finalizes leftover queued jobs under
	// this same mutex ordering, so a submission is either rejected with 503
	// before any journal write, or fully journaled and guaranteed a journaled
	// terminal record — never journaled then silently orphaned.
	s.journal.appendSubmit(j.id, &spec)
	s.mu.Unlock()

	s.metrics.submitted.Add(1)
	s.logf("job %s submitted: protocol=%s n=%d h=%d seeds=%d", j.id, spec.Protocol, spec.N, spec.H, len(spec.Seeds))
	return j.status(), nil
}

// Get returns the status of a job.
func (s *Service) Get(id string) (*JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.status(), nil
}

// List returns all stored jobs in submission order.
func (s *Service) List() []*JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation of a job. A pending job is finalized
// immediately; a running one stops within one simulated round (the engine
// checks the job context at every round boundary). Cancelling a terminal
// job is a no-op returning its current status.
func (s *Service) Cancel(id string) (*JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	state := j.state
	if state == StatePending {
		j.state = StateRunning // block the double-finish path; finish below sets the real state
	}
	j.mu.Unlock()

	switch {
	case state.Terminal():
	case state == StatePending:
		s.finalize(j, StateCancelled, "cancelled before start")
		s.logf("job %s cancelled while queued", j.id)
	default:
		j.cancel()
	}
	return j.status(), nil
}

// finalize is the single exit to a terminal state: it finishes the job,
// journals the terminal record (fsynced — an acknowledged outcome survives
// power loss), and bumps the outcome counter. Every terminal transition in
// the service goes through here, which is what guarantees that a journaled
// submission always gains a journaled terminal record.
func (s *Service) finalize(j *job, state State, errMsg string) {
	j.finish(state, errMsg, s.cfg.ResultTTL)
	s.journal.appendTerminal(j.id, state, errMsg)
	switch state {
	case StateDone:
		s.metrics.done.Add(1)
	case StateFailed:
		s.metrics.failed.Add(1)
	case StateCancelled:
		s.metrics.cancelled.Add(1)
	}
}

// Subscribe attaches a progress stream to a job (see job.subscribe).
func (s *Service) Subscribe(id string) (<-chan Event, func(), error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	ch, unsub := j.subscribe()
	return ch, unsub, nil
}

func (s *Service) lookup(id string) (*job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j, nil
}

// QueueDepth reports the number of jobs waiting for a worker.
func (s *Service) QueueDepth() int { return len(s.queue) }

// lease is a scheduler worker's cached runner: rebuilt only when the next
// job's shape differs, rewound with Reset otherwise.
type lease struct {
	runner *noisypull.Runner
	shape  shapeKey
	ok     bool
}

func (l *lease) drop() {
	if l.runner != nil {
		l.runner.Close()
		l.runner = nil
	}
	l.ok = false
}

// worker executes jobs off the queue until the queue closes (drain).
func (s *Service) worker() {
	defer s.workers.Done()
	var l lease
	defer l.drop()
	for j := range s.queue {
		s.runJob(j, &l)
	}
}

// runJob drives one job through its seeds on the worker's leased runner. A
// recovered job re-enters here with its journaled results preloaded: the
// completed prefix of the seed list is skipped, and the first remaining seed
// restores from the job's checkpoint when one was journaled.
func (s *Service) runJob(j *job, l *lease) {
	j.mu.Lock()
	if j.state != StatePending { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	start := len(j.results) // recovered trials; seeds run in order
	j.mu.Unlock()

	s.metrics.running.Add(1)
	defer s.metrics.running.Add(-1)
	s.journal.appendState(j.id, StateRunning)
	s.logf("job %s running (%d seeds)", j.id, len(j.spec.Seeds)-start)

	// Stuck-job watchdog: a job exceeding its wall-clock budget is cancelled
	// and finalized as failed — a runaway spec must not pin a scheduler
	// worker (and its runner lease) forever.
	if ms := j.spec.MaxWallMS; ms > 0 {
		timer := time.AfterFunc(time.Duration(ms)*time.Millisecond, func() {
			if j.watchdog.CompareAndSwap(false, true) {
				s.metrics.watchdogKills.Add(1)
				s.logf("job %s exceeded max_wall_ms=%d, killing", j.id, ms)
				j.cancel()
			}
		})
		defer timer.Stop()
	}

	var runErr error
	if s.cfg.Dispatcher != nil {
		runErr = s.runDispatched(j, start)
	} else {
		runErr = s.runLocal(j, l, start)
	}
	if runErr != nil && j.ctx.Err() == nil {
		s.finalize(j, StateFailed, runErr.Error())
		s.logf("job %s failed: %v", j.id, runErr)
		return
	}

	if j.ctx.Err() != nil {
		if j.watchdog.Load() {
			s.finalize(j, StateFailed, fmt.Sprintf("watchdog: exceeded max_wall_ms=%d", j.spec.MaxWallMS))
			s.logf("job %s killed by watchdog", j.id)
			return
		}
		s.finalize(j, StateCancelled, "cancelled")
		s.logf("job %s cancelled", j.id)
		return
	}
	s.finalize(j, StateDone, "")
	s.logf("job %s done", j.id)
}

// runLocal is the single-node execution path: the job's remaining seeds run
// in order on the scheduler worker's leased runner. A seed error is returned
// (the job fails); cancellation surfaces as a nil return with j.ctx done.
func (s *Service) runLocal(j *job, l *lease, start int) error {
	for _, seed := range j.spec.Seeds[start:] {
		if j.ctx.Err() != nil {
			return nil
		}
		res, err := s.runSeed(j, l, seed)
		if err != nil {
			if j.ctx.Err() != nil {
				return nil // cancelled (watchdog or drain deadline); caller finalizes
			}
			return err
		}
		s.commitSeed(j, MakeSeedResult(seed, res))
	}
	return nil
}

// runDispatched hands the job's remaining seeds to the configured Dispatcher
// (the fleet coordinator). Results come back through emit in seed order —
// the dispatcher's merge restores order from whatever nodes delivered — and
// land in the same result store, stream, and journal the local path uses, so
// crash recovery and resumable streams work identically: a recovered job
// re-dispatches only its incomplete suffix.
func (s *Service) runDispatched(j *job, start int) error {
	dj := DispatchJob{
		ID:          j.id,
		Spec:        j.spec,
		Fingerprint: j.spec.Fingerprint(),
		Seeds:       j.spec.Seeds[start:],
		Banked:      j.fleetBanked,
		Leases:      j.fleetLeases,
	}
	// Recovery state is consumed by the first dispatch only, like resume.
	j.fleetBanked, j.fleetLeases = nil, nil
	err := s.cfg.Dispatcher.Dispatch(j.ctx, dj, func(sr SeedResult) {
		s.metrics.rounds.Add(int64(sr.Rounds))
		s.metrics.faults.Add(int64(len(sr.Faults)))
		s.commitSeed(j, sr)
	})
	if err != nil && j.ctx.Err() != nil {
		return nil // cancellation/watchdog; caller finalizes from j.ctx
	}
	return err
}

// commitSeed records one finished trial: result store, progress stream,
// journal. Both execution paths converge here, which is what keeps fleet
// runs bit-identical to local ones all the way into the journal.
func (s *Service) commitSeed(j *job, sr SeedResult) {
	j.mu.Lock()
	j.results = append(j.results, sr)
	j.mu.Unlock()
	seq := j.publish(Event{Type: "seed", Seed: sr.Seed, Result: &sr})
	s.journal.appendSeed(j.id, sr.Seed, &sr, seq)
}

// MakeSeedResult converts an engine result into the wire form. Exported for
// the fleet worker, which executes leases outside the scheduler.
func MakeSeedResult(seed uint64, res *noisypull.Result) SeedResult {
	sr := SeedResult{
		Seed:            seed,
		Rounds:          res.Rounds,
		Converged:       res.Converged,
		FirstAllCorrect: res.FirstAllCorrect,
		CorrectOpinion:  res.CorrectOpinion,
		FinalCorrect:    res.FinalCorrect,
	}
	for _, rec := range res.Faults {
		sr.Faults = append(sr.Faults, FaultOutcome{
			Round:       rec.Round,
			Kind:        rec.Kind.String(),
			Index:       rec.Index,
			Affected:    rec.Affected,
			RecoveredAt: rec.RecoveredAt,
		})
	}
	return sr
}

// runSeed executes one trial on the worker's leased runner. Panics from
// protocol or engine code are recovered and surfaced as the trial's error,
// so a misbehaving job fails alone instead of taking down its scheduler
// worker (and with it the daemon's capacity). The recovered runner is
// dropped — its mid-round state is arbitrary. Recovery covers the engine's
// synchronous path, which is how service jobs run (SimWorkers defaults
// to 1).
func (s *Service) runSeed(j *job, l *lease, seed uint64) (res *noisypull.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			l.drop()
			s.metrics.panics.Add(1)
			res, err = nil, fmt.Errorf("panic in protocol/engine: %v", p)
		}
	}()
	if l.ok && l.shape == j.shape {
		l.runner.Reset(seed)
	} else {
		l.drop()
		cfg := j.cfg
		cfg.Seed = seed
		runner, err := noisypull.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		l.runner, l.shape, l.ok = runner, j.shape, true
	}

	// A recovered job restores its journaled checkpoint into the fresh (or
	// rewound) runner, skipping the rounds that already ran before the
	// crash. A restore failure is not fatal: the engine is deterministic, so
	// rerunning the seed from round zero reproduces the identical trajectory
	// — the checkpoint is an optimization, not a correctness dependency.
	if rs := j.resume; rs != nil && rs.seed == seed {
		j.resume = nil
		if restoreErr := l.runner.Restore(rs.data); restoreErr != nil {
			s.logf("job %s: checkpoint restore failed, rerunning seed %d from round 0: %v", j.id, seed, restoreErr)
			l.runner.Reset(seed) // a failed Restore leaves unspecified state
		} else {
			s.metrics.rounds.Add(int64(rs.round))
		}
	}

	l.runner.SetOnRound(func(round, correct int) {
		s.metrics.rounds.Add(1)
		j.publish(Event{Type: "round", Seed: seed, Round: round, Correct: correct})
	})
	l.runner.SetOnFault(func(rec noisypull.FaultRecord) {
		s.metrics.faults.Add(1)
		j.publish(Event{Type: "fault", Seed: seed, Round: rec.Round, Kind: rec.Kind.String(), Affected: rec.Affected})
	})
	if every := j.spec.CheckpointRounds; every > 0 && s.journal != nil {
		l.runner.SetCheckpoint(every, func(round int, data []byte) {
			s.metrics.checkpoints.Add(1)
			s.metrics.checkpointBytes.Store(int64(len(data)))
			s.journal.appendCheckpoint(j.id, seed, round, data, j.seq.Load())
		})
	}
	res, err = l.runner.RunContext(j.ctx)
	l.runner.SetOnRound(nil)
	l.runner.SetOnFault(nil)
	l.runner.SetCheckpoint(0, nil)
	if err != nil && j.ctx.Err() == nil {
		// A protocol/engine error poisons neither the worker nor the lease
		// shape logic, but the runner may be mid-round: drop it.
		l.drop()
	}
	return res, err
}

// janitor evicts terminal jobs past their TTL.
func (s *Service) janitor() {
	interval := s.cfg.ResultTTL / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-ticker.C:
			s.evict(now)
		}
	}
}

func (s *Service) evict(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var kept []string
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		j.mu.Lock()
		expired := j.state.Terminal() && !j.expiry.IsZero() && now.After(j.expiry)
		j.mu.Unlock()
		if expired {
			delete(s.jobs, id)
			s.metrics.evicted.Add(1)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Drain gracefully shuts the service down: stop accepting submissions
// (ErrDraining), let queued and running jobs finish, and — if ctx expires
// first — cancel whatever is still in flight (those jobs finalize as
// cancelled within one simulated round). Drain returns ctx.Err() when the
// deadline forced cancellation, nil on a clean drain. It is idempotent.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}

	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()

	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
		s.rootCancel() // cancels every job context; workers unwind fast
		<-idle
	}

	s.stopOnce.Do(func() {
		s.rootCancel()
		close(s.janitorStop)
	})
	// Jobs that were still queued when the deadline hit were never picked up
	// by a worker; finalize them (with journaled terminal records) so no
	// submission — in particular none that was journaled in a Submit racing
	// this shutdown — is left pending forever or orphaned in the journal.
	s.mu.Lock()
	pending := make([]*job, 0)
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StatePending {
			j.state = StateRunning // reserve the finish transition
			pending = append(pending, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range pending {
		s.finalize(j, StateCancelled, "cancelled: service shut down")
	}
	s.journal.close()
	return err
}

// Close force-stops the service: cancel everything, wait for workers.
func (s *Service) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}

// Jobs returns summary counts by state (for /metrics and tests).
func (s *Service) Jobs() map[State]int {
	out := make(map[State]int)
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// sortStates is a stable order for metrics output.
var sortStates = []State{StatePending, StateRunning, StateDone, StateFailed, StateCancelled}
