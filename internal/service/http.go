package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
)

// maxSpecBytes bounds the POST /v1/jobs body.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec            → 202 JobStatus
//	GET    /v1/jobs             list jobs                   → 200 []JobStatus
//	GET    /v1/jobs/{id}        job status + results        → 200 JobStatus
//	GET    /v1/jobs/{id}/stream NDJSON round-level progress → 200 Event lines
//	DELETE /v1/jobs/{id}        cancel                      → 200 JobStatus
//	GET    /healthz             liveness                    → 200
//	GET    /metrics             Prometheus text metrics     → 200
//	/debug/pprof/*              runtime profiling
//
// Queue-full submissions get 429 with a Retry-After hint; submissions during
// drain get 503; spec validation failures get 400.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream serves NDJSON progress: one Event per line as the job runs,
// closed by a final {"type":"status"} line carrying the terminal JobStatus.
// Slow consumers lose round events (the buffer drops, never blocks the
// engine) but always receive the terminal line.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, unsub, err := s.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer unsub()
	s.metrics.streams.Add(1)
	defer s.metrics.streams.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	done := r.Context().Done()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Terminal: emit the final status line.
				if st, err := s.Get(id); err == nil {
					_ = enc.Encode(Event{Type: "status", Job: st})
					flush()
				}
				return
			}
			if enc.Encode(ev) != nil {
				return // client went away
			}
			flush()
		case <-done:
			return
		}
	}
}
