package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// maxSpecBytes bounds the POST /v1/jobs body.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec            → 202 JobStatus
//	GET    /v1/jobs             list jobs                   → 200 []JobStatus
//	GET    /v1/jobs/{id}        job status + results        → 200 JobStatus
//	GET    /v1/jobs/{id}/stream NDJSON round-level progress → 200 Event lines
//	                            (?from=N skips events with seq ≤ N)
//	DELETE /v1/jobs/{id}        cancel                      → 200 JobStatus
//	GET    /healthz             liveness                    → 200
//	GET    /readyz              readiness + replay summary  → 200 / 503
//	GET    /metrics             Prometheus text metrics     → 200
//	/debug/pprof/*              runtime profiling
//
// Queue-full submissions get 429 with a Retry-After hint; submissions during
// drain or journal replay get 503; spec validation failures get 400.
//
// The concrete *ServeMux return lets embedders (the daemon's Routes hook)
// mount additional endpoints — the fleet coordinator's /fleet/v1/* live on
// the same mux.
func (s *Service) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining), errors.Is(err, ErrNotReady):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// readyBody is the /readyz response: readiness plus the journal replay
// summary (partial — the zero value — while the replay is still running).
type readyBody struct {
	Status string         `json:"status"` // ready | replaying | draining
	Replay *ReplaySummary `json:"replay,omitempty"`
}

// handleReady serves readiness: 503 while the journal is replaying or the
// service is draining (load shedding — orchestrators route traffic away),
// 200 once submissions are accepted. The body carries the replay summary so
// an operator watching a recovery sees what came back.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	body := readyBody{Status: "ready"}
	if summary, done := s.ReplayStatus(); done {
		body.Replay = &summary
	}
	status := http.StatusOK
	switch {
	case !s.ready.Load():
		body.Status = "replaying"
		status = http.StatusServiceUnavailable
	case !s.Ready():
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream serves NDJSON progress: one Event per line as the job runs,
// closed by a final {"type":"status"} line carrying the terminal JobStatus.
// Slow consumers lose round events (the buffer drops, never blocks the
// engine) but always receive the terminal line. ?from=N suppresses events
// with seq ≤ N — a reconnecting client (including across a daemon restart,
// where a resumed job continues its journaled seq numbering) passes the last
// seq it saw and receives no duplicates.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var from uint64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from parameter %q: %w", v, err))
			return
		}
		from = n
	}
	ch, unsub, err := s.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer unsub()
	s.metrics.streams.Add(1)
	defer s.metrics.streams.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	done := r.Context().Done()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Terminal: emit the final status line.
				if st, err := s.Get(id); err == nil {
					_ = enc.Encode(Event{Type: "status", Job: st})
					flush()
				}
				return
			}
			if ev.Seq <= from {
				continue // already delivered before the reconnect
			}
			if enc.Encode(ev) != nil {
				return // client went away
			}
			flush()
		case <-done:
			return
		}
	}
}
