// Package bound implements the closed-form round-complexity bounds of the
// paper: the Theorem 3 lower bound of Boczkowski et al. (2018), and the
// Theorem 4 (SF) and Theorem 5 (SSF) upper bounds. The experiment harness
// uses them to check the *shape* of measured convergence times — who wins,
// with what slope, and where crossovers fall.
package bound

import (
	"fmt"
	"math"
)

// Params collects the system parameters the bounds are stated in.
type Params struct {
	// N is the population size.
	N int
	// H is the per-round sample size.
	H int
	// Alphabet is |Σ|.
	Alphabet int
	// Delta is the noise level (δ-lower-bounded for the lower bound,
	// δ-uniform/upper-bounded for the upper bounds).
	Delta float64
	// Bias is s = |s1 − s0|.
	Bias int
	// Sources is s0 + s1.
	Sources int
}

func (p Params) validate() error {
	if p.N < 2 || p.H < 1 || p.Alphabet < 2 || p.Bias < 1 || p.Sources < 1 {
		return fmt.Errorf("bound: invalid parameters %+v", p)
	}
	if p.Delta < 0 || p.Delta > 1/float64(p.Alphabet) {
		return fmt.Errorf("bound: delta %v outside [0, 1/%d]", p.Delta, p.Alphabet)
	}
	return nil
}

// LowerBound returns the Ω(·) expression of Theorem 3 (without its hidden
// constant):
//
//	LB = n·δ / (h · s² · (1 − |Σ|·δ)²),
//
// the number of rounds any protocol needs for a fixed non-source agent to
// hold the correct opinion with probability 2/3 under δ-lower-bounded noise.
// It returns +Inf when δ = 1/|Σ| (the channel carries no information).
func LowerBound(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	informationless := 1 - float64(p.Alphabet)*p.Delta
	if informationless <= 0 {
		return math.Inf(1), nil
	}
	s := float64(p.Bias)
	return float64(p.N) * p.Delta / (float64(p.H) * s * s * informationless * informationless), nil
}

// SFUpperBound returns the O(·) expression of Theorem 4 (without its hidden
// constant):
//
//	T = (1/h)·( n·δ/(min{s²,n}(1−2δ)²) + √n/s + (s0+s1)/s² )·ln n + ln n.
//
// Valid for the 2-symbol alphabet; δ must be below 1/2.
func SFUpperBound(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if p.Alphabet != 2 {
		return 0, fmt.Errorf("bound: Theorem 4 is stated for |Σ| = 2, got %d", p.Alphabet)
	}
	denom := 1 - 2*p.Delta
	if denom <= 0 {
		return math.Inf(1), nil
	}
	n := float64(p.N)
	s := float64(p.Bias)
	logn := math.Log(n)
	inner := n*p.Delta/(math.Min(s*s, n)*denom*denom) +
		math.Sqrt(n)/s +
		float64(p.Sources)/(s*s)
	return inner*logn/float64(p.H) + logn, nil
}

// SSFUpperBound returns the O(·) expression of Theorem 5 (without its
// hidden constant):
//
//	T = δ·n·ln n / (h·(1−4δ)²) + n/h.
//
// Valid for the 4-symbol alphabet {0,1}²; δ must be below 1/4.
func SSFUpperBound(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if p.Alphabet != 4 {
		return 0, fmt.Errorf("bound: Theorem 5 is stated for |Σ| = 4, got %d", p.Alphabet)
	}
	denom := 1 - 4*p.Delta
	if denom <= 0 {
		return math.Inf(1), nil
	}
	n := float64(p.N)
	return p.Delta*n*math.Log(n)/(float64(p.H)*denom*denom) + n/float64(p.H), nil
}

// TightnessRatio returns SFUpperBound / LowerBound — per the remark after
// Theorem 4 this is O(log n) in the regime δ ≥ 4s/√n with s0+s1 ≤ √n.
func TightnessRatio(p Params) (float64, error) {
	lb, err := LowerBound(p)
	if err != nil {
		return 0, err
	}
	ub, err := SFUpperBound(p)
	if err != nil {
		return 0, err
	}
	if lb == 0 {
		return math.Inf(1), nil
	}
	return ub / lb, nil
}
