package bound

import (
	"math"
	"testing"
)

func base() Params {
	return Params{N: 4096, H: 64, Alphabet: 2, Delta: 0.2, Bias: 1, Sources: 1}
}

func TestLowerBoundFormula(t *testing.T) {
	p := base()
	got, err := LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 4096.0 * 0.2 / (64 * 1 * 0.6 * 0.6)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("LowerBound = %v, want %v", got, want)
	}
}

func TestLowerBoundScalesInverselyWithH(t *testing.T) {
	p := base()
	lb1, err := LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	p.H = 128
	lb2, err := LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb1/lb2-2) > 1e-9 {
		t.Fatalf("doubling h did not halve the bound: %v vs %v", lb1, lb2)
	}
}

func TestLowerBoundInformationlessChannel(t *testing.T) {
	p := base()
	p.Delta = 0.5 // 1/|Σ|: pure noise
	got, err := LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("LowerBound at delta=1/2 = %v, want +Inf", got)
	}
}

func TestLowerBoundValidation(t *testing.T) {
	bad := []Params{
		{N: 1, H: 1, Alphabet: 2, Delta: 0.1, Bias: 1, Sources: 1},
		{N: 10, H: 0, Alphabet: 2, Delta: 0.1, Bias: 1, Sources: 1},
		{N: 10, H: 1, Alphabet: 1, Delta: 0.1, Bias: 1, Sources: 1},
		{N: 10, H: 1, Alphabet: 2, Delta: -0.1, Bias: 1, Sources: 1},
		{N: 10, H: 1, Alphabet: 2, Delta: 0.6, Bias: 1, Sources: 1},
		{N: 10, H: 1, Alphabet: 2, Delta: 0.1, Bias: 0, Sources: 1},
		{N: 10, H: 1, Alphabet: 2, Delta: 0.1, Bias: 1, Sources: 0},
	}
	for i, p := range bad {
		if _, err := LowerBound(p); err == nil {
			t.Errorf("case %d: LowerBound accepted %+v", i, p)
		}
	}
}

func TestSFUpperBoundFormula(t *testing.T) {
	p := base()
	got, err := SFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log(4096)
	want := (4096*0.2/(1*0.36) + 64 + 1) * logn / 64.0
	want += logn
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SFUpperBound = %v, want %v", got, want)
	}
}

func TestSFUpperBoundLogTermFloor(t *testing.T) {
	// With h = n, s and delta constant, the bound is dominated by log n.
	p := base()
	p.H = p.N
	got, err := SFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log(float64(p.N))
	if got < logn || got > 10*logn {
		t.Fatalf("SFUpperBound at h=n = %v, want Θ(log n) ≈ %v", got, logn)
	}
}

func TestSFUpperBoundMinCapsBiasGain(t *testing.T) {
	// Once s² > n, min{s², n} stops improving the first term.
	p := base()
	p.N = 400
	p.Bias = 100 // s² = 10000 > n = 400
	p.Sources = 100
	a, err := SFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Bias = 150
	p.Sources = 150 // still capped (but the sqrt(n)/s term shrinks)
	b, err := SFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if b > a {
		t.Fatalf("larger bias increased bound: %v -> %v", a, b)
	}
	// First terms equal: difference only from sqrt(n)/s and sources terms.
	if a-b > 1 {
		t.Fatalf("bias gain beyond the min cap too large: %v -> %v", a, b)
	}
}

func TestSFUpperBoundRejectsWrongAlphabet(t *testing.T) {
	p := base()
	p.Alphabet = 4
	p.Delta = 0.2
	if _, err := SFUpperBound(p); err == nil {
		t.Fatal("alphabet-4 SF bound did not error")
	}
}

func TestSFUpperBoundDegenerateDelta(t *testing.T) {
	p := base()
	p.Delta = 0.5
	got, err := SFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("SF bound at delta=1/2 = %v", got)
	}
}

func TestSSFUpperBoundFormula(t *testing.T) {
	p := base()
	p.Alphabet = 4
	p.Delta = 0.1
	got, err := SSFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1*4096*math.Log(4096)/(64*0.36) + 4096.0/64
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SSFUpperBound = %v, want %v", got, want)
	}
}

func TestSSFUpperBoundRejectsWrongAlphabet(t *testing.T) {
	p := base()
	if _, err := SSFUpperBound(p); err == nil {
		t.Fatal("alphabet-2 SSF bound did not error")
	}
}

func TestSSFUpperBoundDegenerateDelta(t *testing.T) {
	p := base()
	p.Alphabet = 4
	p.Delta = 0.25
	got, err := SSFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("SSF bound at delta=1/4 = %v", got)
	}
}

// TestTightness checks the remark after Theorem 4: in the regime
// δ ≥ 4s/√n and s0+s1 ≤ √n, upper/lower ratio is O(log n) — concretely,
// the ratio divided by log n stays bounded as n grows.
func TestTightness(t *testing.T) {
	prevNorm := 0.0
	for i, n := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		p := Params{N: n, H: 4, Alphabet: 2, Delta: 0.2, Bias: 1, Sources: 1}
		ratio, err := TightnessRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		norm := ratio / math.Log(float64(n))
		if i > 0 && norm > prevNorm*1.5 {
			t.Fatalf("tightness ratio grows faster than log n: %v then %v", prevNorm, norm)
		}
		prevNorm = norm
	}
}

// TestSpeedupLinearInH is the headline message: for fixed n, δ, s both the
// lower and upper bound scale as 1/h until the log-term floor.
func TestSpeedupLinearInH(t *testing.T) {
	p := base()
	p.N = 1 << 20
	ub1, err := SFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	p.H *= 8
	ub8, err := SFUpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	// Away from the floor the ratio should be close to 8.
	ratio := (ub1 - math.Log(float64(p.N))) / (ub8 - math.Log(float64(p.N)))
	if math.Abs(ratio-8) > 1e-6 {
		t.Fatalf("h-speedup ratio = %v, want 8", ratio)
	}
}
