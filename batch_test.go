package noisypull_test

import (
	"testing"

	"noisypull"
)

// TestRunBatchFacade checks the public batch entry point: one result per
// seed, each bit-identical to a standalone Run under that seed.
func TestRunBatchFacade(t *testing.T) {
	nm, err := noisypull.UniformNoise(2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noisypull.Config{
		N: 120, H: 12, Sources1: 2, Sources0: 1,
		Noise:        nm,
		Protocol:     noisypull.NewSourceFilter(),
		TrackHistory: true,
		Workers:      2, // trials-in-flight for RunBatch
	}
	seeds := []uint64{11, 22, 33, 44, 55}
	batch, err := noisypull.RunBatch(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(seeds) {
		t.Fatalf("got %d results for %d seeds", len(batch), len(seeds))
	}
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		c.Workers = 1
		want, err := noisypull.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if got.Rounds != want.Rounds || got.Converged != want.Converged ||
			got.FinalCorrect != want.FinalCorrect || got.FirstAllCorrect != want.FirstAllCorrect ||
			len(got.History) != len(want.History) {
			t.Fatalf("seed %d: batch %+v != run %+v", seed, got, want)
		}
		for j := range want.History {
			if got.History[j] != want.History[j] {
				t.Fatalf("seed %d: history diverges at round %d", seed, j)
			}
		}
	}
}

func TestRunBatchFacadeRejectsInvalid(t *testing.T) {
	if _, err := noisypull.RunBatch(noisypull.Config{}, []uint64{1}); err == nil {
		t.Fatal("RunBatch accepted empty config")
	}
}
