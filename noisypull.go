package noisypull

import (
	"context"
	"errors"
	"fmt"

	"noisypull/internal/faults"
	"noisypull/internal/graph"
	"noisypull/internal/noise"
	"noisypull/internal/protocol"
	"noisypull/internal/sim"
)

// Re-exported model types. These aliases are the library's public surface;
// the implementations live in internal packages.
type (
	// NoiseMatrix is a validated stochastic noise matrix over the message
	// alphabet.
	NoiseMatrix = noise.Matrix
	// Reduction is the Theorem 8 artificial-noise decomposition.
	Reduction = noise.Reduction
	// Protocol builds per-agent state machines for the simulator.
	Protocol = sim.Protocol
	// CountableProtocol extends Protocol with the state-class interface the
	// counts backend needs (BackendCounts); the three baselines implement it.
	CountableProtocol = sim.CountableProtocol
	// Agent is one protocol instance inside a simulation.
	Agent = sim.Agent
	// Role describes an agent's source status.
	Role = sim.Role
	// Env carries the designer-known system parameters.
	Env = sim.Env
	// Result reports a finished run.
	Result = sim.Result
	// Backend selects the observation sampler.
	Backend = sim.Backend
	// CorruptionMode selects the self-stabilization adversary.
	CorruptionMode = sim.CorruptionMode
	// FaultSchedule is a deterministic runtime fault-injection schedule
	// (mid-run corruption, crashes, churn, noise swaps and drifts) attached
	// to Config.Faults.
	FaultSchedule = faults.Schedule
	// FaultEvent is one scheduled fault.
	FaultEvent = faults.Event
	// FaultKind identifies a fault class.
	FaultKind = faults.Kind
	// FaultRecord is the per-fault telemetry in Result.Faults: the applied
	// round, agents affected, and the recovery round (first all-correct
	// round at or after the hit; 0 = never recovered).
	FaultRecord = faults.Record
	// SFOption customizes the Source Filter protocol.
	SFOption = protocol.SFOption
	// SSFOption customizes the Self-stabilizing Source Filter protocol.
	SSFOption = protocol.SSFOption
	// SourceFilter is the SF protocol of Theorem 4 (Algorithm 1).
	SourceFilter = protocol.SF
	// SelfStabilizing is the SSF protocol of Theorem 5 (Algorithm 2).
	SelfStabilizing = protocol.SSF
)

// Re-exported enumeration values.
const (
	BackendAuto      = sim.BackendAuto
	BackendExact     = sim.BackendExact
	BackendAggregate = sim.BackendAggregate
	// BackendCounts advances the population as state-class counts; per-round
	// cost is independent of n. Requires a CountableProtocol and the
	// complete graph.
	BackendCounts = sim.BackendCounts

	CorruptNone           = sim.CorruptNone
	CorruptWrongConsensus = sim.CorruptWrongConsensus
	CorruptRandom         = sim.CorruptRandom

	// FaultCorrupt re-corrupts a fraction of agents mid-run.
	FaultCorrupt = faults.KindCorrupt
	// FaultCrash freezes a fraction of agents for a fixed interval.
	FaultCrash = faults.KindCrash
	// FaultChurn replaces a fraction of non-sources with fresh agents.
	FaultChurn = faults.KindChurn
	// FaultNoiseSwap replaces the communication noise matrix.
	FaultNoiseSwap = faults.KindNoiseSwap
	// FaultNoiseDrift moves the noise level linearly to a target over a
	// number of rounds.
	FaultNoiseDrift = faults.KindNoiseDrift
)

// Protocol option constructors, re-exported from the protocol package.
var (
	// WithSFConstant sets the c1 constant of Eq. (19).
	WithSFConstant = protocol.WithSFConstant
	// WithSFSampleBudget overrides SF's per-phase sample budget m.
	WithSFSampleBudget = protocol.WithSFSampleBudget
	// WithSFBoostWindow sets the boosting sub-phase message quota numerator.
	WithSFBoostWindow = protocol.WithSFBoostWindow
	// WithSFBoostSubPhases sets the number of boosting sub-phases per ln n.
	WithSFBoostSubPhases = protocol.WithSFBoostSubPhases
	// WithSSFConstant sets the c1 constant of Eq. (30).
	WithSSFConstant = protocol.WithSSFConstant
	// WithSSFUpdateQuota overrides SSF's memory quota m.
	WithSSFUpdateQuota = protocol.WithSSFUpdateQuota
)

// NewSourceFilter returns the Source Filter protocol (Algorithm 1,
// Theorem 4). It communicates with the 2-symbol alphabet {0,1}, assumes a
// simultaneous start, and runs for a fixed number of rounds determined by
// the system parameters.
func NewSourceFilter(opts ...SFOption) *SourceFilter {
	return protocol.NewSF(opts...)
}

// NewSelfStabilizing returns the Self-stabilizing Source Filter protocol
// (Algorithm 2, Theorem 5). It communicates with the 4-symbol alphabet
// {0,1}² and tolerates arbitrary corruption of initial agent state.
func NewSelfStabilizing(opts ...SSFOption) *SelfStabilizing {
	return protocol.NewSSF(opts...)
}

// Baseline protocols for comparison (see package protocol).
var (
	// VoterBaseline is PULL(h) voter dynamics with zealot sources.
	VoterBaseline Protocol = protocol.Voter{}
	// MajorityBaseline is per-round h-majority dynamics with zealot sources.
	MajorityBaseline Protocol = protocol.MajorityRule{}
	// TrustBitBaseline is the naive designated-source-bit cascade.
	TrustBitBaseline Protocol = protocol.TrustBit{}
)

// UniformNoise returns the δ-uniform noise matrix on an alphabet of size d
// (Definition 1).
func UniformNoise(d int, delta float64) (*NoiseMatrix, error) {
	return noise.Uniform(d, delta)
}

// AsymmetricNoise returns the binary channel that flips 0→1 with
// probability p01 and 1→0 with probability p10.
func AsymmetricNoise(p01, p10 float64) (*NoiseMatrix, error) {
	return noise.TwoSymbol(p01, p10)
}

// NoiseFromRows validates an arbitrary stochastic matrix as a noise matrix.
func NoiseFromRows(rows [][]float64) (*NoiseMatrix, error) {
	return noise.FromRows(rows)
}

// ReduceNoise computes the Theorem 8 artificial-noise reduction for a
// δ-upper-bounded matrix: a stochastic P with N·P exactly f(δ)-uniform.
func ReduceNoise(n *NoiseMatrix) (*Reduction, error) {
	return noise.Reduce(n)
}

// F is the artificial-noise level function f(δ) of Definition 7 for an
// alphabet of size d.
func F(delta float64, d int) float64 {
	return noise.F(delta, d)
}

// Config specifies one simulated execution of the noisy PULL(h) model. The
// zero value is not runnable: N, H, sources, Noise, and Protocol are
// required.
type Config struct {
	// N is the population size.
	N int
	// H is the number of agents sampled (with replacement) per round.
	H int
	// Sources1 and Sources0 are the source counts preferring 1 and 0; they
	// must differ, and each must be at most N/4.
	Sources1, Sources0 int
	// Noise is the communication channel. If it is not δ-uniform, Run
	// applies the Theorem 8 reduction automatically (agents add artificial
	// noise P and the protocol is parameterized at δ′ = f(δ)).
	Noise *NoiseMatrix
	// Protocol is the agent protocol (NewSourceFilter, NewSelfStabilizing,
	// a baseline, or a custom implementation).
	Protocol Protocol
	// Seed drives all randomness; equal seeds give bit-identical runs.
	Seed uint64
	// Backend selects the observation sampler (default BackendAuto).
	Backend Backend
	// MaxRounds caps the run for non-terminating protocols (0 = generous
	// default).
	MaxRounds int
	// StabilityWindow is the number of consecutive all-correct rounds a
	// non-terminating protocol must hold to count as converged (0 = 1; for
	// SSF, Run defaults it to two full update cycles).
	StabilityWindow int
	// Corruption selects adversarial initialization of agent state.
	Corruption CorruptionMode
	// Faults, if non-nil, schedules runtime fault injection (mid-run
	// corruption, crashes, churn, noise swaps and drifts), deterministic in
	// Seed; telemetry lands in Result.Faults. The counts backend supports
	// noise events and uniform transient corruption only.
	Faults *FaultSchedule
	// Topology, if non-nil, restricts each agent's sampling to its graph
	// neighborhood (requires the exact backend; see RingTopology and
	// friends). Nil means the paper's complete-graph model.
	Topology *Topology
	// Workers bounds simulation goroutines (0 = GOMAXPROCS).
	Workers int
	// ForceScalar pins the legacy per-agent engine path even when the
	// configuration is eligible for the vectorized struct-of-arrays path.
	// The two paths consume randomness differently, so for the same seed
	// they produce different (individually deterministic, distributionally
	// identical) trajectories; set this to reproduce pre-vectorization
	// traces or to A/B the paths.
	ForceScalar bool
	// TrackHistory records per-round correct-opinion counts in the Result.
	TrackHistory bool
	// OnRound, if set, observes each round's correct-opinion count.
	OnRound func(round, correct int)
	// OnFault, if set, observes each applied fault as it fires.
	OnFault func(FaultRecord)
}

// ErrNotReducible is returned when the supplied noise matrix is too noisy
// for the Theorem 8 reduction (its upper-bound level is not below 1/|Σ|).
var ErrNotReducible = errors.New("noisypull: noise matrix is not reducible to uniform (delta >= 1/|alphabet|)")

// Run executes the configured simulation and reports the outcome.
//
// If cfg.Noise is not δ-uniform, Run computes the artificial-noise matrix
// P = N⁻¹·T of Theorem 8 and has every agent apply it to each received
// message, so protocols always operate under exactly uniform noise — the
// setting their guarantees are stated in.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the context is checked
// once per simulated round, so cancelling it stops the run within one round
// (rather than at MaxRounds) and returns ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	runner, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	defer runner.Close()
	return runner.RunContext(ctx)
}

// RunBatch executes one independent trial per seed and returns the results
// in seed order. Runners are constructed once and rewound between trials, so
// population construction, channel composition (including the Theorem 8
// reduction), and all simulation scratch are amortized across the batch —
// the per-trial overhead of a large batch is just re-deriving agent state.
//
// Trials run concurrently on cfg.Workers goroutines (0 = GOMAXPROCS), each
// simulating single-threaded, so total CPU use stays at the configured
// level. Every trial's result depends only on its seed: RunBatch(cfg, seeds)
// is element-wise identical to calling Run with each seed, for any Workers.
// cfg.Seed and cfg.OnRound are ignored (use TrackHistory for per-trial
// trajectories).
func RunBatch(cfg Config, seeds []uint64) ([]*Result, error) {
	return RunBatchContext(context.Background(), cfg, seeds)
}

// RunBatchContext is RunBatch with cooperative cancellation: once ctx is
// cancelled no further seeds are launched, in-flight trials stop within one
// round, and the call returns ctx.Err().
func RunBatchContext(ctx context.Context, cfg Config, seeds []uint64) ([]*Result, error) {
	cfg.OnRound = nil
	cfg.OnFault = nil
	sc, err := cfg.toSim()
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := checkProtocolDomain(cfg.Protocol, sc.Env()); err != nil {
		return nil, err
	}
	return sim.RunBatchContext(ctx, sc, seeds, cfg.Workers)
}

// Runner is a reusable simulation executor: construction pays for population
// instantiation, channel composition (including the Theorem 8 reduction),
// and all per-round scratch once, and Reset rewinds it for further seeds
// over the same allocations — the mechanism behind RunBatch, exposed so
// long-lived harnesses (for example the simd job scheduler) can lease
// runners across requests.
type Runner struct {
	r *sim.Runner
}

// NewRunner validates cfg and provisions a reusable runner for it. The
// caller should Close it when done (a finalizer reclaims forgotten ones).
func NewRunner(cfg Config) (*Runner, error) {
	sc, err := cfg.toSim()
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := checkProtocolDomain(cfg.Protocol, sc.Env()); err != nil {
		return nil, err
	}
	r, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	return &Runner{r: r}, nil
}

// Run executes the runner's configured simulation. A Runner runs once per
// NewRunner or Reset; calling Run again without a Reset is an error.
func (r *Runner) Run() (*Result, error) { return r.r.Run() }

// RunContext is Run with cooperative cancellation, checked once per round.
// A cancelled runner remains reusable: Reset rewinds it to a state
// bit-identical to a freshly constructed one.
func (r *Runner) RunContext(ctx context.Context) (*Result, error) { return r.r.RunContext(ctx) }

// Reset rewinds the runner under a new seed, reusing its allocations and
// worker pool; the subsequent Run is bit-identical to a fresh runner's.
func (r *Runner) Reset(seed uint64) { r.r.Reset(seed) }

// SetOnRound replaces the per-round observation hook (round index and
// correct-opinion count). It must not be called while a Run is in progress.
func (r *Runner) SetOnRound(fn func(round, correct int)) { r.r.SetOnRound(fn) }

// SetOnFault replaces the fault-application hook, under the same rules as
// SetOnRound.
func (r *Runner) SetOnFault(fn func(FaultRecord)) { r.r.SetOnFault(fn) }

// SetCheckpoint configures periodic checkpointing: every `every` rounds the
// runner snapshots itself and hands the encoded state to fn. every <= 0 or a
// nil fn disables checkpointing. Must not be called while a Run is in
// progress.
func (r *Runner) SetCheckpoint(every int, fn func(round int, snapshot []byte)) {
	r.r.SetCheckpoint(every, fn)
}

// Snapshot serializes the runner's complete resumable state — population,
// RNG streams, round bookkeeping, and pending-fault position — into a
// versioned, checksummed binary blob. Valid between runs, from OnRound /
// checkpoint hooks, and after a cancelled run; Restore on an identically
// configured runner then continues the run bit-identically.
func (r *Runner) Snapshot() ([]byte, error) { return r.r.Snapshot() }

// Restore rewinds the runner to a state previously captured by Snapshot on
// an identically configured runner (same shape, seed, protocol, noise, and
// fault schedule — enforced by an embedded fingerprint). The subsequent
// Run continues from the snapshot's round and is bit-identical to the
// uninterrupted run.
func (r *Runner) Restore(data []byte) error { return r.r.Restore(data) }

// Close releases the runner's worker pool. Idempotent.
func (r *Runner) Close() { r.r.Close() }

// checkProtocolDomain asks protocols that can validate their applicability
// (SF and SSF expose Check) to do so, turning would-be construction panics
// into errors.
func checkProtocolDomain(p Protocol, env sim.Env) error {
	type checker interface{ Check(sim.Env) error }
	if c, ok := p.(checker); ok {
		return c.Check(env)
	}
	return nil
}

// toSim translates the public Config into the engine configuration,
// performing automatic noise reduction and SSF stability defaulting.
func (cfg Config) toSim() (sim.Config, error) {
	if cfg.Noise == nil {
		return sim.Config{}, errors.New("noisypull: Config.Noise is required")
	}
	if cfg.Protocol == nil {
		return sim.Config{}, errors.New("noisypull: Config.Protocol is required")
	}
	sc := sim.Config{
		N:               cfg.N,
		H:               cfg.H,
		Sources1:        cfg.Sources1,
		Sources0:        cfg.Sources0,
		Noise:           cfg.Noise,
		Protocol:        cfg.Protocol,
		Seed:            cfg.Seed,
		Backend:         cfg.Backend,
		MaxRounds:       cfg.MaxRounds,
		StabilityWindow: cfg.StabilityWindow,
		Corruption:      cfg.Corruption,
		Faults:          cfg.Faults,
		Topology:        cfg.Topology,
		Workers:         cfg.Workers,
		ForceScalar:     cfg.ForceScalar,
		TrackHistory:    cfg.TrackHistory,
		OnRound:         cfg.OnRound,
		OnFault:         cfg.OnFault,
	}
	if _, uniform := cfg.Noise.UniformDelta(1e-9); !uniform {
		red, err := noise.Reduce(cfg.Noise)
		if err != nil {
			return sim.Config{}, fmt.Errorf("%w: %v", ErrNotReducible, err)
		}
		sc.Artificial = red.P
	}
	// Default the stability window of SSF runs to two update cycles so
	// "converged" means surviving memory flushes.
	if ssf, ok := cfg.Protocol.(*SelfStabilizing); ok && cfg.StabilityWindow == 0 {
		env := sc.Env()
		if m, err := ssf.UpdateQuota(env); err == nil && cfg.H > 0 {
			sc.StabilityWindow = 2 * ((m + cfg.H - 1) / cfg.H)
			if sc.MaxRounds == 0 {
				if conv, err := ssf.ConvergenceRounds(env); err == nil {
					sc.MaxRounds = 6*conv + sc.StabilityWindow
				}
			}
		}
	}
	return sc, nil
}

// Check validates that the configuration is runnable — including protocol
// applicability (noise level within the protocol's domain) — without
// executing it.
func (cfg Config) Check() error {
	sc, err := cfg.toSim()
	if err != nil {
		return err
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	return checkProtocolDomain(cfg.Protocol, sc.Env())
}

// NoiseEstimator accumulates (displayed, observed) calibration pairs and
// produces the maximum-likelihood noise matrix — for deployments where the
// channel is not known a priori (the paper assumes agents know N; this is
// the practical complement).
type NoiseEstimator = noise.Estimator

// NewNoiseEstimator returns an estimator for an alphabet of size d.
func NewNoiseEstimator(d int) (*NoiseEstimator, error) {
	return noise.NewEstimator(d)
}

// RunAsync executes the configured simulation under a fully asynchronous
// activation schedule: one uniformly random agent activates at a time, and
// time is reported in parallel rounds (n activations). There are no common
// rounds, so protocols that rely on a shared clock (SF) degrade, while SSF's
// guarantees carry over. Workers is ignored (the schedule is sequential);
// the same automatic Theorem 8 noise reduction as Run applies.
func RunAsync(cfg Config) (*Result, error) {
	sc, err := cfg.toSim()
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := checkProtocolDomain(cfg.Protocol, sc.Env()); err != nil {
		return nil, err
	}
	runner, err := sim.NewAsync(sc)
	if err != nil {
		return nil, err
	}
	return runner.Run()
}

// Topology is an undirected communication graph restricting which agents
// can be sampled (nil Topology in Config means the paper's complete-graph
// model).
type Topology = graph.Graph

// RingTopology returns the circulant graph where every agent is adjacent
// to its k nearest neighbors on each side.
func RingTopology(n, k int) (*Topology, error) {
	return graph.Ring(n, k)
}

// RandomRegularTopology returns a random d-regular simple graph (an
// expander w.h.p. for d ≥ 3).
func RandomRegularTopology(n, d int, seed uint64) (*Topology, error) {
	return graph.RandomRegular(n, d, seed)
}

// ErdosRenyiTopology returns a G(n, p) random graph.
func ErdosRenyiTopology(n int, p float64, seed uint64) (*Topology, error) {
	return graph.ErdosRenyi(n, p, seed)
}
