package noisypull

import (
	"noisypull/internal/bound"
	"noisypull/internal/experiment"
)

// BoundParams collects the parameters of the paper's round-complexity
// bounds.
type BoundParams = bound.Params

// LowerBound evaluates the Theorem 3 lower bound (Boczkowski et al. 2018):
// Ω(nδ/(h·s²·(1−|Σ|δ)²)) rounds for any protocol under δ-lower-bounded
// noise.
func LowerBound(p BoundParams) (float64, error) {
	return bound.LowerBound(p)
}

// SFUpperBound evaluates the Theorem 4 upper bound achieved by SF.
func SFUpperBound(p BoundParams) (float64, error) {
	return bound.SFUpperBound(p)
}

// SSFUpperBound evaluates the Theorem 5 upper bound achieved by SSF.
func SSFUpperBound(p BoundParams) (float64, error) {
	return bound.SSFUpperBound(p)
}

// Experiment re-exports the reproduction-harness experiment type: each one
// regenerates a figure or theorem-claim table of the paper (see DESIGN.md).
type Experiment = experiment.Experiment

// ExperimentOptions configures a harness run.
type ExperimentOptions = experiment.Options

// ExperimentArtifact is the output of one experiment.
type ExperimentArtifact = experiment.Artifact

// Experiment scales.
const (
	ScaleQuick = experiment.ScaleQuick
	ScaleFull  = experiment.ScaleFull
)

// Experiments returns the full reproduction suite E1–E12 in index order.
func Experiments() []Experiment {
	return experiment.All()
}

// ExperimentByID looks up one experiment ("E1" … "E12").
func ExperimentByID(id string) (Experiment, bool) {
	return experiment.ByID(id)
}
